"""Figure 12: top-k processing cost versus k (1 to 16).

Paper's shape: a larger k means more facilities pinned in the growing stage
and more candidates in the shrinking stage, so both algorithms get more
expensive; the broader expansion exacerbates LSA's multiple-read problem, so
the gap grows to ~3.4x at k=16.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, metric_curve, report_series

from repro.bench.experiments import effect_of_k


def test_fig12_topk_effect_of_k(benchmark):
    series = benchmark.pedantic(lambda: effect_of_k(BENCH_SCALE), rounds=1, iterations=1)
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    for algorithm in ("lsa", "cea"):
        curve = metric_curve(series, algorithm)
        assert curve[-1] >= curve[0], f"{algorithm}: k=16 should cost at least as much as k=1"
    # Result sizes track k.
    assert [row.metric("cea", "mean_result_size") for row in series.rows] == list(BENCH_SCALE.k_values)
