"""Figure 11(b): top-k processing cost versus the LRU buffer size (0 %-2 %).

Paper's shape: performance of both methods improves as the buffer grows;
CEA is up to ~3.4x faster with no buffer and still ~1.8x faster at 2 %.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, metric_curve, report_series

from repro.bench.experiments import effect_of_buffer


def test_fig11b_topk_effect_of_buffer(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_buffer("top-k", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    for algorithm in ("lsa", "cea"):
        curve = metric_curve(series, algorithm)
        assert curve[0] >= curve[-1], f"{algorithm}: 0% buffer should cost at least as much as 2%"
