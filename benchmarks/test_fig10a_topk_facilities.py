"""Figure 10(a): top-k processing cost versus the number of facilities |P|.

Paper's shape: like the skyline case, sparse facility sets are the most
expensive; CEA is 2-3.4x cheaper than LSA, with the gap widest on sparse
networks where more nodes/edges are (re-)read.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, metric_curve, report_series

from repro.bench.experiments import effect_of_facilities


def test_fig10a_topk_effect_of_facilities(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_facilities("top-k", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    for algorithm in ("lsa", "cea"):
        curve = metric_curve(series, algorithm)
        assert curve[0] >= curve[-1], f"{algorithm}: the sparsest |P| should be the most expensive"
    # Every sweep point returns exactly k facilities.
    assert all(row.metric("cea", "mean_result_size") == BENCH_SCALE.default_k for row in series.rows)
