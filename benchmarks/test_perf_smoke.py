"""Perf-harness smoke: the pinned ``bench perf`` suite at miniature scale.

Runs the whole perf-baseline suite (every case, both paths) on micro
populations, asserting the harness's built-in verification verdicts —
identical results and identical I/O accounting between the accessor path
and the compiled-graph kernel.  CI runs this under the ``bench_smoke``
marker, so the fast path is exercised end to end (one-shot replays, the
batched service, the sharded service and the monitoring stream) on every
push without paying full-benchmark cost.
"""

from __future__ import annotations

import pytest

from repro.bench.perf import HEADLINE_CASE, format_perf_report, run_perf_suite


@pytest.mark.bench_smoke
def test_perf_suite_smoke():
    report = run_perf_suite(smoke=True, repeats=1)
    assert report.all_identical, "fast path diverged from the accessor path"
    assert report.all_io_identical, "fast path charged different I/O"
    assert report.headline.name == HEADLINE_CASE
    assert len(report.cases) == 7
    rendered = format_perf_report(report)
    assert "speedup" in rendered
