"""Benchmark smoke pass: one tiny configuration of every figure family.

``pytest -m bench_smoke`` runs each registered experiment (all the
``test_fig*.py`` families plus both ablations) at :data:`_common.SMOKE_SCALE`
— a micro population whose whole sweep finishes in seconds — plus a micro
replay of the continuous-monitoring update stream, so the streaming path is
exercised too.  CI runs this marker so breakage anywhere in the figure
harness (sweep plumbing, trial runner, metric extraction) or the monitor
replay surfaces without paying full benchmark cost.
"""

from __future__ import annotations

import pytest
from _common import SMOKE_SCALE

from repro.bench.driver import MonitorReplaySpec, format_monitor_report, replay_update_stream
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import format_series_table
from repro.datagen import UpdateStreamSpec, WorkloadSpec


@pytest.mark.bench_smoke
@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_smoke(name):
    series = run_experiment(name, SMOKE_SCALE)
    assert series.rows, f"experiment {name} produced no sweep rows"
    algorithms = series.algorithms()
    assert algorithms, f"experiment {name} measured no algorithms"
    for row in series.rows:
        for algorithm in algorithms:
            page_reads = row.metric(algorithm, "mean_page_reads")
            assert page_reads >= 0
    # The reporting path must render every series it measured.
    table = format_series_table(series)
    assert series.figure in table or series.experiment_id in table


@pytest.mark.bench_smoke
def test_monitor_replay_smoke():
    """Micro replay of the streaming path: incremental vs recompute-every-tick."""
    report = replay_update_stream(
        MonitorReplaySpec(
            workload=WorkloadSpec(
                num_nodes=150, num_facilities=60, num_cost_types=3, num_queries=6, seed=7
            ),
            stream=UpdateStreamSpec(num_ticks=6, updates_per_tick=4, seed=8),
            subscriptions=6,
        )
    )
    assert report.identical_results, "maintained results diverged from recompute"
    assert report.incremental.ticks == 6
    assert report.counters.incremental_updates > 0
    # The reporting path must render the comparison.
    table = format_monitor_report(report)
    assert "incremental" in table and "recompute" in table
