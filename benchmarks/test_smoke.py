"""Benchmark smoke pass: one tiny configuration of every figure family.

``pytest -m bench_smoke`` runs each registered experiment (all the
``test_fig*.py`` families plus both ablations) at :data:`_common.SMOKE_SCALE`
— a micro population whose whole sweep finishes in seconds.  CI runs this
marker so breakage anywhere in the figure harness (sweep plumbing, trial
runner, metric extraction) surfaces without paying full benchmark cost.
"""

from __future__ import annotations

import pytest
from _common import SMOKE_SCALE

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import format_series_table


@pytest.mark.bench_smoke
@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_smoke(name):
    series = run_experiment(name, SMOKE_SCALE)
    assert series.rows, f"experiment {name} produced no sweep rows"
    algorithms = series.algorithms()
    assert algorithms, f"experiment {name} measured no algorithms"
    for row in series.rows:
        for algorithm in algorithms:
            page_reads = row.metric(algorithm, "mean_page_reads")
            assert page_reads >= 0
    # The reporting path must render every series it measured.
    table = format_series_table(series)
    assert series.figure in table or series.experiment_id in table
