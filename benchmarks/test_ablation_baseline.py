"""Ablation (Section IV introduction): LSA/CEA versus the straightforward baseline.

The baseline performs d complete network expansions and then a conventional
skyline; the paper dismisses it as prohibitively expensive because it reads
the entire database d times.  This benchmark quantifies that gap on the
default workload: both LSA and CEA must beat the baseline by a wide margin.
"""

from __future__ import annotations

from _common import BENCH_SCALE, report_series

from repro.bench.experiments import ablation_versus_baseline


def test_ablation_versus_baseline(benchmark):
    series = benchmark.pedantic(lambda: ablation_versus_baseline(BENCH_SCALE), rounds=1, iterations=1)
    report_series(benchmark, series)
    trial = series.rows[0].trial
    baseline = trial.measurements["baseline"].mean_page_reads
    lsa = trial.measurements["lsa"].mean_page_reads
    cea = trial.measurements["cea"].mean_page_reads
    assert cea < lsa < baseline
    assert baseline / lsa > 2.0, "the local search should read far less than the full baseline"
    assert baseline / cea > 4.0
