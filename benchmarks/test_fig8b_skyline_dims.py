"""Figure 8(b): skyline processing cost versus the number of cost types d.

Paper's shape: cost rises with d for both algorithms (more expansions, later
pinning, larger candidate sets) and the CEA-over-LSA advantage widens as d
grows, because LSA re-reads each node's adjacency up to d times.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, metric_curve, report_series

from repro.bench.experiments import effect_of_cost_types


def test_fig8b_skyline_effect_of_cost_types(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_cost_types("skyline", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    for algorithm in ("lsa", "cea"):
        curve = metric_curve(series, algorithm)
        assert curve[-1] > curve[0], f"{algorithm} should get more expensive as d grows"
    # The LSA/CEA gap at d=5 should be at least as large as at d=2.
    ratios = [row.trial.speedup() for row in series.rows]
    assert ratios[-1] >= ratios[0] * 0.9
