"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow ``import _common`` regardless of the directory pytest is invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))
