"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow ``import _common`` regardless of the directory pytest is invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: fast one-configuration smoke pass over every figure "
        "family (run with `pytest -m bench_smoke`)",
    )
