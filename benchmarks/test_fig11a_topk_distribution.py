"""Figure 11(a): top-k processing cost versus the edge-cost distribution.

Paper's shape: anti-correlated is the most expensive, correlated the cheapest
(the k pinned facilities are found close under every cost type, and the
lower-bound pruning of candidates is very effective).  CEA wins everywhere.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, report_series

from repro.bench.experiments import effect_of_distribution


def test_fig11a_topk_effect_of_distribution(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_distribution("top-k", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    by_value = {row.value: row for row in series.rows}
    for algorithm in ("lsa", "cea"):
        assert by_value["anti-correlated"].metric(algorithm) >= by_value["correlated"].metric(algorithm)
