"""Figure 9(b): skyline processing cost versus the LRU buffer size (0 %-2 %).

Paper's shape: both algorithms benefit from a larger buffer, LSA more so
(its repeated reads of the same pages increasingly hit the buffer), and the
no-buffer configuration is by far the most expensive.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, metric_curve, report_series

from repro.bench.experiments import effect_of_buffer


def test_fig9b_skyline_effect_of_buffer(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_buffer("skyline", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    for algorithm in ("lsa", "cea"):
        curve = metric_curve(series, algorithm)
        assert curve[0] >= curve[-1], f"{algorithm}: 0% buffer should cost at least as much as 2%"
    # LSA must benefit from the buffer at least as much as CEA in absolute terms
    # (its multiple-read problem is what the buffer absorbs).
    lsa_curve = metric_curve(series, "lsa")
    cea_curve = metric_curve(series, "cea")
    assert (lsa_curve[0] - lsa_curve[-1]) >= (cea_curve[0] - cea_curve[-1]) * 0.5
