"""Ablation (Section IV-A discussion, Figure 4): expansion probing policies.

The paper argues for round-robin probing because smallest-first (or
largest-first) lets one cost type monopolise the search, delaying the first
pin and inflating the candidate set.  This ablation regenerates that
comparison: round-robin should need no more page reads than the
skewed policies on the anti-correlated default workload.
"""

from __future__ import annotations

from _common import BENCH_SCALE, report_series

from repro.bench.experiments import ablation_probing_policy


def test_ablation_probing_policy(benchmark):
    series = benchmark.pedantic(lambda: ablation_probing_policy(BENCH_SCALE), rounds=1, iterations=1)
    report_series(benchmark, series)
    by_policy = {row.value: row for row in series.rows}
    round_robin = by_policy["round-robin"].metric("lsa")
    smallest = by_policy["smallest-first"].metric("lsa")
    largest = by_policy["largest-first"].metric("lsa")
    # Round-robin should not lose badly to either skewed policy (allow 10 % noise).
    assert round_robin <= smallest * 1.1
    assert round_robin <= largest * 1.1
