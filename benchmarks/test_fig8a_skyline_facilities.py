"""Figure 8(a): skyline processing cost versus the number of facilities |P|.

Paper's shape: both algorithms get *cheaper* as the facility set grows
(sparser facility sets force the expansions to traverse more of the network
before the next nearest facility appears), and CEA beats LSA at every |P|
by a factor of roughly 2-4x.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, metric_curve, report_series

from repro.bench.experiments import effect_of_facilities


def test_fig8a_skyline_effect_of_facilities(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_facilities("skyline", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    # Sparse facility sets must not be cheaper than the densest one (paper's
    # counter-intuitive trend: small |P| means more network traversed per NN).
    cea_curve = metric_curve(series, "cea")
    assert cea_curve[0] >= cea_curve[-1]
    lsa_curve = metric_curve(series, "lsa")
    assert lsa_curve[0] >= lsa_curve[-1]
