"""Shared scale and reporting helpers for the per-figure benchmark targets.

Each benchmark regenerates one figure of the paper's Section VI at a reduced
scale (the substrate is a pure-Python simulator, not the authors' disk-based
C++ testbed).  The absolute numbers therefore differ from the paper; what the
benchmarks check and report is the *shape* of each figure: which algorithm
wins, in which direction each parameter moves the cost, and by roughly what
factor.  The printed tables are the rows/series of the corresponding figure;
run with ``pytest benchmarks/ --benchmark-only -s`` to see them, or read the
``extra_info`` of the saved benchmark JSON.
"""

from __future__ import annotations

from repro.bench.config import ExperimentScale
from repro.bench.experiments import ExperimentSeries
from repro.bench.reporting import format_series_table, summarize_speedups

#: Populations used by the benchmark targets.  The node count is ~1:110 of the
#: San Francisco network, and the facility sweep covers the same facility
#: densities (|P| / |E| from ~0.11 to ~0.9) as the paper's 25K-200K sweep, so
#: the trends are directly comparable.  The whole ``pytest benchmarks/
#: --benchmark-only`` run stays in the low minutes.
BENCH_SCALE = ExperimentScale(
    name="bench",
    num_nodes=1600,
    facility_counts=(230, 460, 920, 1380, 1840),
    default_facilities=920,
    cost_type_counts=(2, 3, 4, 5),
    default_cost_types=4,
    buffer_fractions=(0.0, 0.005, 0.01, 0.015, 0.02),
    default_buffer_fraction=0.01,
    k_values=(1, 2, 4, 8, 16),
    default_k=4,
    num_queries=4,
    page_size=1024,
    seed=7,
)


#: Micro populations used by the ``bench_smoke`` marker: one tiny sweep per
#: figure family, small enough that the whole smoke pass stays in seconds.
#: The point is catching harness breakage (imports, sweep plumbing, metric
#: extraction) in CI, not reproducing the figure shapes.
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    num_nodes=150,
    facility_counts=(20, 40),
    default_facilities=30,
    cost_type_counts=(2, 3),
    default_cost_types=2,
    buffer_fractions=(0.0, 0.01),
    default_buffer_fraction=0.01,
    k_values=(1, 2),
    default_k=2,
    num_queries=1,
    page_size=1024,
    seed=7,
)


def report_series(benchmark, series: ExperimentSeries) -> None:
    """Print the figure's table and attach it to the benchmark record."""
    table = format_series_table(series)
    speedups = summarize_speedups(series)
    print()
    print(table, end="")
    if speedups:
        print(speedups)
    benchmark.extra_info["figure"] = series.figure
    benchmark.extra_info["table"] = table
    if speedups:
        benchmark.extra_info["speedups"] = speedups


def cea_wins_everywhere(series: ExperimentSeries) -> bool:
    """True when CEA needs no more page reads than LSA at every sweep point."""
    return all(
        row.metric("cea", "mean_page_reads") <= row.metric("lsa", "mean_page_reads")
        for row in series.rows
    )


def metric_curve(series: ExperimentSeries, algorithm: str, metric: str = "mean_page_reads"):
    """The list of metric values along the sweep, in sweep order."""
    return [row.metric(algorithm, metric) for row in series.rows]
