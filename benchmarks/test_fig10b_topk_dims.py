"""Figure 10(b): top-k processing cost versus the number of cost types d.

Paper's shape: more cost types mean more expansions and later pinning, so the
cost rises with d for both algorithms; CEA stays ahead and its advantage
grows with d.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, metric_curve, report_series

from repro.bench.experiments import effect_of_cost_types


def test_fig10b_topk_effect_of_cost_types(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_cost_types("top-k", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    for algorithm in ("lsa", "cea"):
        curve = metric_curve(series, algorithm)
        assert curve[-1] > curve[0], f"{algorithm} should get more expensive as d grows"
