"""University housing scenario: walking time versus driving time.

Second motivating example of the paper (Section I): a university must pick a
residential block for student/instructor housing.  Commuters either walk or
drive, and the walking-shortest path usually differs from the
driving-shortest path (one-way streets, pedestrian-only paths, highways), so
each block is characterised by two different network distances from campus.

The script builds a network where some edges are pedestrian-friendly (fast to
walk, impossible to drive quickly) and others are arterial roads (fast to
drive, unpleasant to walk), computes the skyline of candidate blocks, and
then ranks them for a given split of walking versus driving commuters —
including the incremental ranking that keeps producing "the next best block"
until the committee is satisfied.

Run with::

    python examples/university_housing.py
"""

from __future__ import annotations

import random

from repro import MCNQueryEngine, NetworkLocation
from repro.datagen import RoadNetworkSpec, generate_road_network
from repro.network import CostVector, FacilitySet, MultiCostGraph

WALK, DRIVE = 0, 1


def build_city(seed: int = 42) -> MultiCostGraph:
    """A city whose edges are either pedestrian streets or arterial roads."""
    base = generate_road_network(RoadNetworkSpec(num_nodes=1200, seed=seed), num_cost_types=2)
    rng = random.Random(seed + 1)
    city = MultiCostGraph(2)
    for node in base.nodes():
        city.add_node(node.node_id, node.x, node.y)
    for edge in base.edges():
        length = edge.length
        if rng.random() < 0.35:
            # Pedestrian-friendly street: walking at 5 km/h equivalents,
            # driving slowed to a crawl (traffic calming).
            costs = CostVector([length / 5.0, length / 8.0])
        else:
            # Arterial road: fast to drive, slow and unpleasant to walk.
            costs = CostVector([length / 4.0, length / 40.0])
        city.add_edge(edge.u, edge.v, costs, length=length, edge_id=edge.edge_id)
    return city


def place_blocks(city: MultiCostGraph, count: int = 250, seed: int = 43) -> FacilitySet:
    """Candidate residential blocks placed uniformly over the street network."""
    rng = random.Random(seed)
    edges = list(city.edges())
    blocks = FacilitySet(city)
    for block_id in range(count):
        edge = rng.choice(edges)
        blocks.add_on_edge(block_id, edge.edge_id, rng.uniform(0.0, edge.length), {"units": rng.randint(20, 200)})
    return blocks


def main() -> None:
    city = build_city()
    blocks = place_blocks(city)
    engine = MCNQueryEngine(city, blocks)

    campus = NetworkLocation.at_node(next(iter(city.node_ids())))
    print("city:", city)
    print("candidate blocks:", len(blocks))
    print("campus at", campus.describe(city))
    print()

    print("=== Blocks on the (walking, driving) skyline ===")
    skyline = engine.skyline(campus)
    for member in sorted(skyline, key=lambda m: m.facility_id):
        walk = member.costs[WALK]
        drive = member.costs[DRIVE]
        walk_text = "?" if walk is None else f"{walk:.0f} min walk"
        drive_text = "?" if drive is None else f"{drive:.0f} min drive"
        print(f"  block {member.facility_id}: {walk_text}, {drive_text}")
    print(f"  ({len(skyline)} of {len(blocks)} candidate blocks survive)")
    print()

    # 70 % of residents walk, 30 % drive.
    print("=== Ranking for a 70/30 walking/driving population ===")
    ranking = engine.top_k(campus, k=5, weights=[0.7, 0.3])
    for rank, item in enumerate(ranking, start=1):
        units = blocks.facility(item.facility_id).attributes["units"]
        print(
            f"  #{rank}: block {item.facility_id} — aggregate commute {item.score:.1f} "
            f"(walk {item.costs[WALK]:.0f}, drive {item.costs[DRIVE]:.0f}), {units} units"
        )
    print()

    # The committee wants blocks until 500 housing units are covered; k is not
    # known in advance, so the incremental top-k iterator is the right tool.
    print("=== Incremental selection until 500 units are covered ===")
    selected_units = 0
    stream = engine.iter_top(campus, weights=[0.7, 0.3])
    for item in stream:
        units = int(blocks.facility(item.facility_id).attributes["units"])
        selected_units += units
        print(f"  picked block {item.facility_id} ({units} units, commute score {item.score:.1f})")
        if selected_units >= 500:
            break
    print(f"  total units: {selected_units}")


if __name__ == "__main__":
    main()
