"""Continuous monitoring: long-lived subscriptions over a facility-update stream.

The paper's Section VII names incremental maintenance under facility and
query updates as the key open extension.  This example registers skyline and
top-k subscriptions through the :class:`~repro.api.Session` facade, feeds
the returned :class:`~repro.api.MonitorHandle` a synthetic update stream
(inserts, deletes, a query relocation), and prints the per-tick delta
reports — which facilities entered or left each result — plus the
incremental-vs-fallback maintenance accounting.

Run with::

    PYTHONPATH=src python examples/continuous_monitoring.py
"""

from __future__ import annotations

from repro import SkylineRequest, TopKRequest
from repro.api import Session
from repro.bench.driver import MonitorReplaySpec, format_monitor_report, replay_update_stream
from repro.datagen import UpdateStreamSpec, WorkloadSpec, make_update_stream, make_workload


def main() -> None:
    spec = WorkloadSpec(
        num_nodes=400, num_facilities=150, num_cost_types=3, num_queries=4, seed=17
    )
    workload = make_workload(spec)

    print("=== Subscriptions over a live facility set ===")
    session = Session(workload.graph, workload.facilities)
    handle = session.monitor(
        [
            SkylineRequest(workload.queries[0]),
            TopKRequest(workload.queries[1], k=4, weights=(0.5, 0.3, 0.2)),
        ]
    )
    sky, top = handle.subscription_ids
    print(f"skyline subscription {sky}: {sorted(handle.result_signature(sky))}")
    print(f"top-4 subscription {top}:   {sorted(handle.result_signature(top))}")

    stream = make_update_stream(
        workload.graph,
        workload.facilities,
        UpdateStreamSpec(num_ticks=5, updates_per_tick=4, seed=3),
        subscription_ids=[sky, top],
    )
    print(f"\nstream: {len(stream)} ticks, {stream.num_updates} updates")
    for response in handle.run(stream):
        for delta in response.deltas:
            if delta.changed:
                print(
                    f"  tick {response.index} sub {delta.subscription_id} ({delta.kind}): "
                    f"+{list(delta.entered)} -{list(delta.left)} "
                    f"~{list(delta.rescored)} -> {delta.size} facilities"
                )
    counters = handle.statistics
    print(
        f"\nmaintenance paths: {counters.incremental_updates} incremental, "
        f"{counters.recomputations} recomputations "
        f"(of which {counters.query_moves} query moves)"
    )

    print()
    print("=== Replay driver: incremental maintenance vs recompute-every-tick ===")
    report = replay_update_stream(
        MonitorReplaySpec(
            workload=WorkloadSpec(
                num_nodes=400, num_facilities=150, num_cost_types=3, num_queries=8, seed=17
            ),
            stream=UpdateStreamSpec(num_ticks=25, updates_per_tick=5, seed=3),
            subscriptions=8,
        )
    )
    print(format_monitor_report(report), end="")


if __name__ == "__main__":
    main()
