"""Quickstart: build a small multi-cost network and ask the two preference queries.

The scenario is the paper's Figure 1 in miniature: a port (the query
location) and candidate warehouse sites (facilities), where every road
segment has two costs — driving time and monetary cost (tolls + fuel).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FacilitySet, MCNQueryEngine, MultiCostGraph, NetworkLocation
from repro.api import ExecutionPolicy, Session


def build_network() -> tuple[MultiCostGraph, FacilitySet]:
    """A hand-crafted 9-node network with two cost types: (minutes, dollars)."""
    graph = MultiCostGraph(num_cost_types=2)
    # A 3x3 grid of intersections; coordinates only matter for display.
    for node_id in range(9):
        graph.add_node(node_id, x=(node_id % 3) * 100.0, y=(node_id // 3) * 100.0)

    # Horizontal and vertical streets.  The "highway" edges (marked) are fast
    # but tolled; the side streets are slow but free.
    edges = [
        (0, 1, (4.0, 0.0)),
        (1, 2, (4.0, 0.0)),
        (3, 4, (2.0, 1.0)),  # highway segment: fast, 1 $ toll
        (4, 5, (2.0, 1.0)),  # highway segment
        (6, 7, (5.0, 0.0)),
        (7, 8, (5.0, 0.0)),
        (0, 3, (3.0, 0.0)),
        (3, 6, (3.0, 0.0)),
        (1, 4, (3.0, 0.0)),
        (4, 7, (3.0, 0.0)),
        (2, 5, (3.0, 0.0)),
        (5, 8, (3.0, 0.0)),
    ]
    for u, v, costs in edges:
        graph.add_edge(u, v, costs)

    facilities = FacilitySet(graph)
    # Three candidate warehouse sites, each placed halfway along an edge.
    facilities.add_on_edge(0, graph.edge_between(1, 2).edge_id, offset=2.0, attributes={"name": "North-East lot"})
    facilities.add_on_edge(1, graph.edge_between(4, 5).edge_id, offset=1.0, attributes={"name": "Highway lot"})
    facilities.add_on_edge(2, graph.edge_between(7, 8).edge_id, offset=2.5, attributes={"name": "South-East lot"})
    return graph, facilities


def main() -> None:
    graph, facilities = build_network()
    engine = MCNQueryEngine(graph, facilities)

    # The port sits at node 3 (west side of the network).
    port = NetworkLocation.at_node(3)

    print("=== MCN skyline: warehouses that are not dominated in (time, cost) ===")
    skyline = engine.skyline(port, algorithm="cea")
    for member in skyline:
        name = facilities.facility(member.facility_id).attributes.get("name", "?")
        time_cost = ", ".join("?" if c is None else f"{c:.1f}" for c in member.costs)
        print(f"  facility {member.facility_id} ({name}): costs = ({time_cost})")

    print()
    print("=== Top-2 under f = 0.9 * time + 0.1 * dollars (mostly time-sensitive goods) ===")
    best = engine.top_k(port, k=2, weights=[0.9, 0.1])
    for rank, item in enumerate(best, start=1):
        name = facilities.facility(item.facility_id).attributes.get("name", "?")
        print(f"  #{rank}: facility {item.facility_id} ({name}) with aggregate cost {item.score:.2f}")

    print()
    print("=== Incremental retrieval (no k fixed in advance) ===")
    stream = engine.iter_top(port, weights=[0.5, 0.5])
    for rank, item in enumerate(stream, start=1):
        print(f"  next best: facility {item.facility_id} with aggregate cost {item.score:.2f}")
        if rank == len(facilities):
            break

    print()
    print("=== The same queries through the Session facade ===")
    # A Session owns the dataset and picks the execution stack from a
    # declarative policy — here the disk-resident layer, so responses
    # additionally report page reads.
    session = Session(graph, facilities, policy=ExecutionPolicy(residency="disk"))
    response = session.skyline(port)
    print(f"  skyline: {len(response)} facilities, {response.io.page_reads} page reads")
    response = session.top_k(port, k=2, weights=[0.9, 0.1])
    ranking = ", ".join(f"{item.facility_id} ({item.score:.2f})" for item in response.result)
    print(f"  top-2 under 0.9*time + 0.1*dollars: {ranking}")


if __name__ == "__main__":
    main()
