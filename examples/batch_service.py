"""Batch service: serve a whole workload of queries from one shared engine.

Beyond the paper's per-query evaluation, the service layer executes a trace
of mixed skyline / top-k requests through one cross-query expansion cache:
records fetched for an early query are reused by every later one, and exact
repeats are answered from a result memo without touching the disk at all.

Run with::

    PYTHONPATH=src python examples/batch_service.py
"""

from __future__ import annotations

from repro import MCNQueryEngine, QueryService, SkylineRequest, TopKRequest
from repro.bench.driver import ReplaySpec, format_replay_report, replay_workload
from repro.datagen import WorkloadSpec, make_workload


def main() -> None:
    spec = WorkloadSpec(
        num_nodes=400, num_facilities=150, num_cost_types=3, num_queries=30, seed=17
    )
    workload = make_workload(spec)
    engine = MCNQueryEngine(workload.graph, workload.facilities, use_disk=True, page_size=1024)
    service = QueryService(engine)

    print("=== Streaming interface: submit(), then drain() ===")
    for index, query in enumerate(workload.queries[:6]):
        if index % 2 == 0:
            service.submit(SkylineRequest(query))
        else:
            service.submit(TopKRequest(query, k=3, weights=(0.5, 0.3, 0.2)))
    print(f"pending requests: {service.pending_count}")
    for outcome in service.drain():
        kind = "skyline" if isinstance(outcome.request, SkylineRequest) else "top-k"
        print(
            f"  ticket {outcome.ticket} ({kind}): {len(outcome.result)} facilities, "
            f"{outcome.io.page_reads} page reads, {outcome.elapsed_seconds * 1000:.2f} ms"
        )
    print(f"cache after the stream: {service.cache.describe()}")

    print()
    print("=== Re-submitting the same queries: answered from the result memo ===")
    tickets = [service.submit(SkylineRequest(q)) for q in workload.queries[:6:2]]
    outcomes = service.drain()
    for ticket, outcome in zip(tickets, outcomes):
        print(
            f"  ticket {ticket}: memo hit = {outcome.served_from_memo}, "
            f"{outcome.io.page_reads} page reads"
        )

    print()
    print("=== Replay driver: one-shot engine calls vs the batch service ===")
    report = replay_workload(ReplaySpec(workload=spec, mix="mixed", k=3, page_size=1024))
    print(format_replay_report(report), end="")


if __name__ == "__main__":
    main()
