"""Batch service: serve a whole workload of queries from one shared session.

Beyond the paper's per-query evaluation, the service layer executes a trace
of mixed skyline / top-k requests through one cross-query expansion cache:
records fetched for an early query are reused by every later one, and exact
repeats are answered from a result memo without touching the disk at all.
The :class:`~repro.api.Session` facade fronts that machinery — callers pick
the behaviour with an :class:`~repro.api.ExecutionPolicy` instead of wiring
engines and services by hand.

Run with::

    PYTHONPATH=src python examples/batch_service.py
"""

from __future__ import annotations

from repro import SkylineRequest, TopKRequest
from repro.api import ExecutionPolicy, Session
from repro.bench.driver import ReplaySpec, format_replay_report, replay_workload
from repro.datagen import WorkloadSpec, make_workload


def main() -> None:
    spec = WorkloadSpec(
        num_nodes=400, num_facilities=150, num_cost_types=3, num_queries=30, seed=17
    )
    workload = make_workload(spec)
    session = Session(
        workload.graph,
        workload.facilities,
        policy=ExecutionPolicy(residency="disk", page_size=1024),
    )

    print("=== One batch through the session's shared expansion cache ===")
    requests = [
        SkylineRequest(q) if index % 2 == 0 else TopKRequest(q, k=3, weights=(0.5, 0.3, 0.2))
        for index, q in enumerate(workload.queries[:6])
    ]
    batch = session.run_batch(requests)
    for response in batch:
        print(
            f"  ticket {response.ticket} ({response.kind}): {len(response)} facilities, "
            f"{response.io.page_reads} page reads, {response.elapsed_seconds * 1000:.2f} ms"
        )
    print(f"batch totals: {batch.describe()}")

    print()
    print("=== Re-running the same queries: answered from the result memo ===")
    for response in session.run_batch(requests[:3]):
        print(
            f"  ticket {response.ticket}: memo hit = {response.served_from_memo}, "
            f"{response.io.page_reads} page reads"
        )

    print()
    print("=== The same batch sharded across two workers (policy override) ===")
    sharded = session.run_batch(
        requests, policy=session.policy.replace(workers=2, executor="thread")
    )
    print(f"sharded totals: {sharded.describe()}")

    print()
    print("=== Replay driver: one-shot engine calls vs the batch service ===")
    report = replay_workload(ReplaySpec(workload=spec, mix="mixed", k=3, page_size=1024))
    print(format_replay_report(report), end="")


if __name__ == "__main__":
    main()
