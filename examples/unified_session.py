"""Unified session: one object drives every execution stack.

The :class:`~repro.api.Session` facade owns the dataset (graph + facilities)
and hides the four execution stacks — one-shot engine calls, the batch
service, the sharded parallel service and the monitoring service — behind
three verbs that all take the same request types and an optional
:class:`~repro.api.ExecutionPolicy` override:

* ``session.query(...)`` / ``session.skyline(...)`` / ``session.top_k(...)``
* ``session.run_batch(...)``          (sequential or sharded, per policy)
* ``session.monitor(...)``            (long-lived subscriptions + ticks)

A policy is a frozen, declarative value object that round-trips through
JSON, so a whole execution configuration can be shipped, logged or checked
in next to the request payloads.

Run with::

    PYTHONPATH=src python examples/unified_session.py
"""

from __future__ import annotations

import json

from repro import SkylineRequest, TopKRequest
from repro.api import ExecutionPolicy, Session, policy_from_payload, policy_to_payload
from repro.datagen import UpdateStreamSpec, WorkloadSpec, make_update_stream, make_workload


def main() -> None:
    workload = make_workload(
        WorkloadSpec(num_nodes=300, num_facilities=120, num_cost_types=3, num_queries=8, seed=11)
    )

    # The session default: disk-resident storage, small pages, sequential.
    policy = ExecutionPolicy(residency="disk", page_size=1024)
    session = Session(workload.graph, workload.facilities, policy=policy)

    print("=== A policy is declarative data: it round-trips through JSON ===")
    payload = json.dumps(policy_to_payload(policy), indent=2, sort_keys=True)
    print(payload)
    assert policy_from_payload(json.loads(payload)) == policy

    print()
    print("=== One-shot queries through the same session ===")
    query = workload.queries[0]
    skyline = session.skyline(query)
    print(
        f"skyline: {len(skyline)} facilities, {skyline.io.page_reads} page reads, "
        f"{skyline.elapsed_seconds * 1000:.2f} ms (policy: {skyline.policy.residency})"
    )
    best = session.top_k(query, k=3, weights=(0.5, 0.3, 0.2))
    print(
        "top-3:  "
        + ", ".join(f"p{item.facility_id} ({item.score:.1f})" for item in best.result)
    )

    print()
    print("=== The same batch, sequential and sharded, via a policy override ===")
    requests = [
        SkylineRequest(q) if index % 2 == 0 else TopKRequest(q, k=3, weights=(0.5, 0.3, 0.2))
        for index, q in enumerate(workload.queries)
    ]
    sequential = session.run_batch(requests)
    sharded = session.run_batch(requests, policy=policy.replace(workers=2, executor="thread"))
    print(f"sequential: {sequential.describe()}")
    print(f"sharded:    {sharded.describe()}")
    same = all(
        [f.facility_id for f in a.result] == [f.facility_id for f in b.result]
        for a, b in zip(sequential, sharded)
    )
    print(f"identical answers: {'yes' if same else 'NO'}")

    print()
    print("=== Monitoring: subscriptions + ticks, still the same session ===")
    handle = session.monitor(requests[:4])
    stream = make_update_stream(
        workload.graph,
        workload.facilities,
        UpdateStreamSpec(num_ticks=3, updates_per_tick=4, seed=3),
        subscription_ids=list(handle.subscription_ids),
    )
    for response in handle.run(stream):
        changed = ", ".join(str(sid) for sid in response.changed_subscriptions) or "none"
        print(
            f"tick {response.index}: {response.updates} updates, "
            f"{response.incremental_updates} incremental / "
            f"{response.recomputations} recomputed, changed subscriptions: {changed}"
        )


if __name__ == "__main__":
    main()
