"""Logistics scenario: choosing warehouse sites reachable from a port.

This reproduces the paper's motivating example (Section I) at city scale: a
port must dispatch both time-sensitive goods (dairy) and cost-sensitive goods
(bulk freight) to a warehouse chosen from many candidate sites.  Each road
segment carries three costs — driving time, monetary cost (tolls + fuel) and
distance — so no single shortest-path query answers the question.

The script generates a synthetic city, places clustered candidate sites,
computes:

* the skyline of sites (the only ones worth shortlisting), and
* top-k rankings under two different business priorities,

and reports how much I/O the disk-based CEA needed compared to LSA.

Run with::

    python examples/logistics_warehouse.py
"""

from __future__ import annotations

import random

from repro import MCNQueryEngine, NetworkLocation
from repro.datagen import (
    CostDistribution,
    RoadNetworkSpec,
    assign_edge_costs,
    generate_clustered_facilities,
    generate_road_network,
)

NUM_COST_TYPES = 3  # driving time, monetary cost, distance
COST_NAMES = ("time", "money", "distance")


def main() -> None:
    rng = random.Random(2010)

    # 1. A synthetic city: ~1600 intersections, anti-correlated costs
    #    (fast roads tend to be tolled, cheap roads tend to be slow).
    base = generate_road_network(RoadNetworkSpec(num_nodes=1600, seed=2010), num_cost_types=NUM_COST_TYPES)
    city = assign_edge_costs(base, CostDistribution.ANTI_CORRELATED, seed=2011)

    # 2. Candidate warehouse sites cluster around a few industrial areas.
    sites = generate_clustered_facilities(city, 400, num_clusters=8, seed=2012)

    # 3. The port is a fixed network location.
    port_edge = next(iter(city.edges()))
    port = NetworkLocation.on_edge(port_edge.edge_id, port_edge.length / 2)

    engine = MCNQueryEngine(city, sites, use_disk=True, page_size=1024, buffer_fraction=0.01)
    print("city:", city)
    print("candidate sites:", len(sites))
    print("port location:", port.describe(city))
    print()

    # 4. Shortlist: the skyline of candidate sites.
    engine.storage.reset_statistics(clear_buffer=True)
    shortlist_cea = engine.skyline(port, algorithm="cea")
    cea_reads = shortlist_cea.statistics.io.page_reads
    engine.storage.reset_statistics(clear_buffer=True)
    shortlist_lsa = engine.skyline(port, algorithm="lsa")
    lsa_reads = shortlist_lsa.statistics.io.page_reads

    print(f"=== Skyline shortlist ({len(shortlist_cea)} sites) ===")
    for member in shortlist_cea:
        rendered = ", ".join(
            f"{name}={'?' if value is None else f'{value:.0f}'}"
            for name, value in zip(COST_NAMES, member.costs)
        )
        print(f"  site {member.facility_id}: {rendered}")
    print(f"  I/O: CEA {cea_reads} page reads vs LSA {lsa_reads} ({lsa_reads / max(cea_reads, 1):.1f}x more)")
    print()

    # 5. Ranking under two different business priorities.
    priorities = {
        "dairy (time-critical)": [0.8, 0.1, 0.1],
        "bulk freight (cost-critical)": [0.1, 0.8, 0.1],
    }
    for label, weights in priorities.items():
        ranking = engine.top_k(port, k=3, weights=weights)
        rendered = ", ".join(f"site {item.facility_id} ({item.score:.0f})" for item in ranking)
        print(f"top-3 for {label}: {rendered}")

    # 6. Every top-1 site under a monotone weighting must be on the shortlist.
    shortlist_ids = shortlist_cea.facility_ids()
    for _ in range(5):
        weights = [rng.random() + 0.05 for _ in range(NUM_COST_TYPES)]
        winner = engine.top_k(port, k=1, weights=weights).facilities[0]
        assert winner.facility_id in shortlist_ids, "top-1 result must belong to the skyline"
    print()
    print("checked: every random-weight top-1 site belongs to the skyline shortlist")


if __name__ == "__main__":
    main()
