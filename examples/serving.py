"""The serving tier: the session behind a wire, with zero dependencies.

:class:`~repro.serve.ServeApp` wraps one :class:`~repro.api.Session` behind
JSON endpoints — query, batch submit + poll, PATCH facility updates,
subscriptions with SSE delta streams, and rolling latency metrics — and
every transport funnels into the same dispatch: the in-process test client,
the pure-asyncio HTTP/1.1 server, and an optional ASGI adapter.

This example drives the whole surface twice:

* **in process** — no sockets, the transport the differential harness uses
  to prove served payloads bit-identical to direct library calls;
* **over HTTP** — the same app on a real ephemeral port, spoken to with a
  hand-rolled HTTP/1.1 client on asyncio streams (stdlib only).

Run with::

    PYTHONPATH=src python examples/serving.py
"""

from __future__ import annotations

import asyncio
import json

from repro import SkylineRequest, TopKRequest
from repro.datagen import UpdateStreamSpec, WorkloadSpec, make_update_stream, make_workload
from repro.api import Session
from repro.monitor.stream import tick_to_payload
from repro.serve import HttpServer, InProcessClient, ServeApp, ServeConfig, collect_events
from repro.service.requests import request_to_payload


async def in_process_tour(app: ServeApp, requests, ticks) -> None:
    client = InProcessClient(app)

    print("=== One-shot query (POST /v1/query) ===")
    response = await client.post("/v1/query", {"request": requests[0]})
    payload = response.payload
    print(
        f"seq {payload['seq']}: {payload['kind']} -> "
        f"{len(payload['result']['facilities'])} facilities, "
        f"memo hit: {payload['served_from_memo']}"
    )

    print()
    print("=== Batch: submit (POST /v1/batch), then poll ===")
    submitted = await client.post("/v1/batch", {"requests": requests})
    job = submitted.payload["job"]
    while True:
        poll = await client.get(f"/v1/batch/{job}")
        if poll.payload["state"] in ("done", "failed"):
            break
        await asyncio.sleep(0.002)
    outcome = poll.payload["result"]
    print(f"job {job}: {poll.payload['state']}, {len(outcome['responses'])} responses")

    print()
    print("=== Subscription + SSE delta stream across facility updates ===")
    subscribed = await client.post("/v1/subscriptions", {"request": requests[0]})
    sid = subscribed.payload["subscription"]
    stream = await client.stream(sid)
    for updates in ticks:
        patched = await client.patch("/v1/facilities", {"updates": updates})
        print(
            f"tick {patched.payload['index']}: {patched.payload['updates']} updates, "
            f"{len(patched.payload['deltas'])} deltas, "
            f"{patched.payload['invalidated_services']} result caches invalidated"
        )
    events = await collect_events(stream, limit=1 + len(ticks))
    print(
        "stream events: "
        + ", ".join(
            event.event
            + (f" (tick {event.data['tick']})" if event.event == "delta" else "")
            for event in events
        )
    )

    print()
    print("=== Rolling latency percentiles (GET /v1/metrics) ===")
    metrics = (await client.get("/v1/metrics")).payload
    for label in sorted(metrics["endpoints"]):
        summary = metrics["endpoints"][label]
        print(
            f"{label:<12} count {summary['count']:>3}  "
            f"p50 {summary['p50_ms']:.2f} ms  p99 {summary['p99_ms']:.2f} ms"
        )
    admission = metrics["admission"]
    print(
        f"admission: {admission['admitted']} admitted, {admission['rejected']} rejected, "
        f"high water {admission['high_water']}/{admission['capacity']}"
    )


async def http_get(port: int, path: str) -> dict:
    """A minimal HTTP/1.1 GET on asyncio streams — the wire, with no deps."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return {"status": status, "payload": json.loads(body)}


async def http_tour(app: ServeApp) -> None:
    print()
    print("=== The same app over real HTTP/1.1 (ephemeral port) ===")
    async with HttpServer(app, port=0) as server:
        health = await http_get(server.port, "/v1/health")
        print(f"GET /v1/health -> {health['status']} {health['payload']}")
        missing = await http_get(server.port, "/v1/batch/nope")
        print(f"GET /v1/batch/nope -> {missing['status']} {missing['payload']}")


async def main() -> None:
    workload = make_workload(
        WorkloadSpec(num_nodes=300, num_facilities=120, num_cost_types=3, num_queries=6, seed=11)
    )
    requests = [
        request_to_payload(
            SkylineRequest(q) if index % 2 == 0 else TopKRequest(q, k=3, weights=(0.5, 0.3, 0.2))
        )
        for index, q in enumerate(workload.queries)
    ]
    ticks = [
        tick_to_payload(tick)
        for tick in make_update_stream(
            workload.graph,
            workload.facilities,
            UpdateStreamSpec(
                num_ticks=2,
                updates_per_tick=3,
                insert_fraction=0.5,
                delete_fraction=0.5,
                relocate_fraction=0.0,
                seed=13,
            ),
            subscription_ids=[],
        )
    ]
    session = Session(workload.graph, workload.facilities)
    app = ServeApp(session, config=ServeConfig(max_in_flight=4))
    async with app:  # owns the session: teardown closes engines and pools
        await in_process_tour(app, requests, ticks)
        await http_tour(app)


if __name__ == "__main__":
    asyncio.run(main())
