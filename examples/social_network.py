"""Social-network scenario: multi-affinity closeness queries.

The paper notes (Section I) that MCN preference queries are not limited to
road networks: in a social graph whose edges carry several affinity weights
(here: interaction distance, geographic distance, organisational distance),
the skyline/top-k of "people closest to q" under all affinities at once is
exactly the same query.  This example builds a small-world-ish social graph,
marks a subset of members as "experts" (the facility set), and finds, for a
given member, the experts who are not dominated under any mix of affinities.

It also cross-checks one expert with the multi-criteria Pareto-path solver:
every Pareto-optimal path cost to that expert must be at least the per-cost
shortest distances the preference query used.

Run with::

    python examples/social_network.py
"""

from __future__ import annotations

import random

from repro import MCNQueryEngine, NetworkLocation
from repro.classic import pareto_paths
from repro.network import FacilitySet, MultiCostGraph

NUM_MEMBERS = 400
NUM_EXPERTS = 60
AFFINITIES = ("interaction", "geography", "organisation")


def build_social_graph(seed: int = 99) -> MultiCostGraph:
    """A ring-plus-shortcuts graph with three edge affinities (smaller = closer)."""
    rng = random.Random(seed)
    graph = MultiCostGraph(num_cost_types=3)
    for member in range(NUM_MEMBERS):
        graph.add_node(member)
    # Ring of acquaintance.
    for member in range(NUM_MEMBERS):
        neighbor = (member + 1) % NUM_MEMBERS
        graph.add_edge(member, neighbor, [rng.uniform(1, 5) for _ in AFFINITIES])
    # Long-range shortcuts: strong ties that are close in one affinity but not others.
    for _ in range(NUM_MEMBERS):
        u = rng.randrange(NUM_MEMBERS)
        v = rng.randrange(NUM_MEMBERS)
        if u == v or graph.edge_between(u, v) is not None:
            continue
        strong_dimension = rng.randrange(3)
        costs = [rng.uniform(4, 8) for _ in AFFINITIES]
        costs[strong_dimension] = rng.uniform(0.5, 2)
        graph.add_edge(u, v, costs)
    return graph


def mark_experts(graph: MultiCostGraph, seed: int = 100) -> FacilitySet:
    """Experts sit on edges incident to randomly chosen members."""
    rng = random.Random(seed)
    experts = FacilitySet(graph)
    chosen = rng.sample(range(NUM_MEMBERS), NUM_EXPERTS)
    for expert_id, member in enumerate(chosen):
        edge = rng.choice(graph.neighbors(member))[1]
        experts.add_on_edge(expert_id, edge.edge_id, rng.uniform(0, edge.length), {"member": member})
    return experts


def main() -> None:
    graph = build_social_graph()
    experts = mark_experts(graph)
    engine = MCNQueryEngine(graph, experts)
    me = NetworkLocation.at_node(0)

    print("social graph:", graph)
    print("experts:", len(experts))
    print()

    print("=== Experts on the multi-affinity skyline of member 0 ===")
    skyline = engine.skyline(me)
    for member in skyline:
        rendered = ", ".join(
            f"{name}={'?' if value is None else f'{value:.1f}'}"
            for name, value in zip(AFFINITIES, member.costs)
        )
        print(f"  expert {member.facility_id}: {rendered}")
    print(f"  ({len(skyline)} of {len(experts)} experts are non-dominated)")
    print()

    print("=== Top-5 experts when interaction matters most (60/20/20) ===")
    ranking = engine.top_k(me, k=5, weights=[0.6, 0.2, 0.2])
    for rank, item in enumerate(ranking, start=1):
        print(f"  #{rank}: expert {item.facility_id} with affinity score {item.score:.2f}")
    print()

    # Cross-check one skyline expert against the Pareto-path solver: the
    # per-affinity shortest distances used by the preference query must be
    # component-wise lower bounds of every Pareto-optimal path cost.
    probe = next(iter(skyline))
    expert_member = int(experts.facility(probe.facility_id).attributes["member"])
    paths = pareto_paths(graph, 0, expert_member)
    print(f"=== Pareto-optimal paths from member 0 to expert {probe.facility_id}'s host member ===")
    for path in paths[:5]:
        rendered = ", ".join(f"{value:.1f}" for value in path.costs)
        print(f"  {len(path.nodes) - 1} hops with costs ({rendered})")
    print(f"  ({len(paths)} Pareto-optimal paths in total)")


if __name__ == "__main__":
    main()
