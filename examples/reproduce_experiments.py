"""Reproduce the paper's Section-VI experiment suite and print every table.

This drives the same experiment registry the benchmarks use, at the "small"
scale so that the full sweep finishes in a couple of minutes on a laptop.
Pass ``--scale default`` for the larger (slower) configuration, or a list of
experiment names to run a subset::

    python examples/reproduce_experiments.py fig8a fig12
    python examples/reproduce_experiments.py --scale default
"""

from __future__ import annotations

import argparse

from repro.bench import (
    DEFAULT_SCALE,
    EXPERIMENTS,
    SMALL_SCALE,
    format_series_table,
    run_experiment,
    summarize_speedups,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=[], help="experiment names (default: all)")
    parser.add_argument("--scale", choices=("small", "default"), default="small")
    args = parser.parse_args()

    scale = SMALL_SCALE if args.scale == "small" else DEFAULT_SCALE
    names = args.experiments or sorted(EXPERIMENTS)
    for name in names:
        series = run_experiment(name, scale)
        print(format_series_table(series))
        speedups = summarize_speedups(series)
        if speedups:
            print(speedups)
        print()


if __name__ == "__main__":
    main()
