"""Extensions demo: rush-hour (time-dependent) costs and live facility updates.

This example exercises the two future-work directions of the paper's
conclusion that this library implements:

1. **Time-dependent edge costs** — driving times on arterial roads double
   around the morning peak, so the set of non-dominated park-and-ride sites
   changes over the day.  ``skyline_over_period`` evaluates the skyline over
   sampled instants and reports the stable intervals.
2. **Facility/query updates** — sites open and close during the day; the
   ``SkylineMaintainer`` and ``TopKMaintainer`` patch the result incrementally
   instead of recomputing it from scratch.

Run with::

    python examples/rush_hour_and_updates.py
"""

from __future__ import annotations

import random

from repro import MCNQueryEngine, NetworkLocation, SkylineMaintainer, TopKMaintainer, WeightedSum
from repro.datagen import (
    CostDistribution,
    RoadNetworkSpec,
    assign_edge_costs,
    generate_clustered_facilities,
    generate_road_network,
)
from repro.network import Facility
from repro.timedep import TimeVaryingMCN, peak_profile, skyline_over_period, stable_intervals

DRIVE, WALK = 0, 1


def build_city(seed: int = 2026):
    base = generate_road_network(RoadNetworkSpec(num_nodes=900, seed=seed), num_cost_types=2)
    city = assign_edge_costs(base, CostDistribution.ANTI_CORRELATED, seed=seed + 1)
    sites = generate_clustered_facilities(city, 150, num_clusters=6, seed=seed + 2)
    return city, sites


def main() -> None:
    rng = random.Random(7)
    city, sites = build_city()
    commuter = NetworkLocation.at_node(next(iter(city.node_ids())))
    print("city:", city, "| park-and-ride sites:", len(sites))
    print()

    # ------------------------------------------------------------------ #
    # 1. Rush hour: the driving cost of ~40% of the edges doubles at 8am.
    # ------------------------------------------------------------------ #
    rush_hour = TimeVaryingMCN(city)
    congested = 0
    for edge in city.edges():
        if rng.random() < 0.4:
            rush_hour.set_profile(
                edge.edge_id, DRIVE, peak_profile(peak_time=8.0, peak_multiplier=2.2, width=2.5)
            )
            congested += 1
    print(f"=== Rush-hour skyline over the morning (congesting {congested} road segments) ===")
    times = [6.0, 7.0, 8.0, 9.0, 10.0, 11.0]
    period = skyline_over_period(rush_hour, sites, commuter, times)
    for interval in stable_intervals(period):
        ids = ", ".join(str(fid) for fid in interval.facility_ids)
        print(f"  {interval.start:4.1f}h - {interval.end:4.1f}h : skyline = {{{ids}}}")
    print()

    # ------------------------------------------------------------------ #
    # 2. Live updates: sites open and close; results are patched in place.
    # ------------------------------------------------------------------ #
    print("=== Live facility updates (static off-peak costs) ===")
    # The two maintainers own separate facility-set copies so each sees exactly
    # the updates it is told about.
    from repro.timedep import rebind_facilities

    skyline = SkylineMaintainer(city, sites, commuter)
    ranking = TopKMaintainer(city, rebind_facilities(city, sites), commuter, WeightedSum((0.7, 0.3)), 3)
    print(f"  initial skyline: {sorted(skyline.skyline_ids())}")
    print(f"  initial top-3:   {ranking.facility_ids()}")

    # A new site opens right next to the commuter's position.
    nearby_edge = city.neighbors(commuter.node_id)[0][1]
    new_site = Facility(9000, nearby_edge.edge_id, 0.1, {"name": "new lot"})
    skyline.insert(new_site)
    ranking.insert(Facility(9000, nearby_edge.edge_id, 0.1, {"name": "new lot"}))
    print(f"  after opening site 9000: skyline = {sorted(skyline.skyline_ids())}, top-3 = {ranking.facility_ids()}")

    # A random batch of existing sites closes.
    closing = rng.sample([fid for fid in sites.facility_ids() if fid != 9000], 10)
    for fid in closing:
        skyline.delete(fid)
    print(f"  after closing 10 sites:  skyline = {sorted(skyline.skyline_ids())}")
    stats = skyline.statistics
    print(
        f"  maintenance statistics: {stats.insertions} insertions, {stats.deletions} deletions, "
        f"{stats.incremental_updates} handled incrementally, {stats.recomputations} recomputations"
    )
    print()

    # Cross-check against a fresh engine on the final facility set.
    engine = MCNQueryEngine(city, sites)
    fresh = engine.skyline(commuter).facility_ids()
    assert fresh == skyline.skyline_ids(), "maintained skyline must equal a fresh computation"
    print("checked: the maintained skyline equals a from-scratch computation on the final state")


if __name__ == "__main__":
    main()
