"""Unit tests for the incremental nearest-facility network expansion."""

from __future__ import annotations

import pytest

from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.errors import QueryError
from repro.network import FacilitySet, InMemoryAccessor, MultiCostGraph, NetworkLocation
from tests.helpers import facility_vectors


@pytest.fixture
def accessor(tiny_graph, tiny_facilities) -> InMemoryAccessor:
    return InMemoryAccessor(tiny_graph, tiny_facilities)


def expansion_for(accessor, graph, query, cost_index):
    seeds = ExpansionSeeds.from_query(graph, query)
    return NearestFacilityExpansion(accessor, seeds, cost_index)


class TestSeeds:
    def test_node_query_seeds(self, tiny_graph):
        seeds = ExpansionSeeds.from_query(tiny_graph, NetworkLocation.at_node(3))
        assert seeds.anchors == ((3, (0.0, 0.0)),)
        assert seeds.query_edge is None

    def test_edge_query_seeds(self, tiny_graph):
        edge = tiny_graph.edge_between(3, 4)
        seeds = ExpansionSeeds.from_query(tiny_graph, NetworkLocation.on_edge(edge.edge_id, 0.5))
        assert seeds.query_edge == edge.edge_id
        assert len(seeds.anchors) == 2
        assert seeds.query_edge_costs == edge.costs.values

    def test_invalid_query_rejected(self, tiny_graph):
        with pytest.raises(Exception):
            ExpansionSeeds.from_query(tiny_graph, NetworkLocation.at_node(99))


class TestNearestFacilityOrder:
    def test_facilities_arrive_in_increasing_cost(self, accessor, tiny_graph):
        query = NetworkLocation.at_node(3)
        expansion = expansion_for(accessor, tiny_graph, query, 0)
        costs = []
        while True:
            hit = expansion.next_facility()
            if hit is None:
                break
            costs.append(hit.cost)
        assert costs == sorted(costs)
        assert len(costs) == 3

    def test_costs_match_dijkstra_ground_truth(self, accessor, tiny_graph, tiny_facilities):
        query = NetworkLocation.at_node(3)
        truth = facility_vectors(tiny_graph, tiny_facilities, query)
        for cost_index in range(2):
            expansion = expansion_for(accessor, tiny_graph, query, cost_index)
            observed = {}
            while True:
                hit = expansion.next_facility()
                if hit is None:
                    break
                observed[hit.facility_id] = hit.cost
            expected = {fid: vector[cost_index] for fid, vector in truth.items()}
            assert observed == pytest.approx(expected)

    def test_each_facility_reported_once(self, accessor, tiny_graph):
        expansion = expansion_for(accessor, tiny_graph, NetworkLocation.at_node(4), 0)
        seen = []
        while True:
            hit = expansion.next_facility()
            if hit is None:
                break
            seen.append(hit.facility_id)
        assert len(seen) == len(set(seen)) == 3

    def test_exhausted_after_all_facilities(self, accessor, tiny_graph):
        expansion = expansion_for(accessor, tiny_graph, NetworkLocation.at_node(3), 0)
        while expansion.next_facility() is not None:
            pass
        assert expansion.exhausted
        assert expansion.next_facility() is None

    def test_head_key_is_monotone_lower_bound(self, accessor, tiny_graph):
        expansion = expansion_for(accessor, tiny_graph, NetworkLocation.at_node(3), 0)
        previous_head = 0.0
        while True:
            head = expansion.head_key()
            assert head >= previous_head - 1e-12
            previous_head = head
            hit = expansion.next_facility()
            if hit is None:
                break
            assert hit.cost >= 0.0
        assert expansion.head_key() == float("inf")

    def test_query_on_edge_with_facility_uses_direct_route(self, tiny_graph, tiny_facilities):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        highway = tiny_graph.edge_between(4, 5)
        # Query placed on the highway edge 0.5 before facility 1 (offset 1.0).
        query = NetworkLocation.on_edge(highway.edge_id, 0.5)
        expansion = expansion_for(accessor, tiny_graph, query, 0)
        hit = expansion.next_facility()
        assert hit.facility_id == 1
        assert hit.cost == pytest.approx(0.5)  # quarter of the 2-minute edge

    def test_bad_cost_index_rejected(self, accessor, tiny_graph):
        seeds = ExpansionSeeds.from_query(tiny_graph, NetworkLocation.at_node(3))
        with pytest.raises(QueryError):
            NearestFacilityExpansion(accessor, seeds, 5)


class TestCandidateMode:
    def test_candidate_mode_only_reports_allowed(self, accessor, tiny_graph, tiny_facilities):
        query = NetworkLocation.at_node(3)
        expansion = expansion_for(accessor, tiny_graph, query, 0)
        first = expansion.next_facility()
        # Restrict to facility 2 only.
        record = accessor.edge_facilities(tiny_facilities.facility(2).edge_id)[0]
        expansion.enter_candidate_mode({record.edge_id: [record]})
        hits = []
        while True:
            hit = expansion.next_facility()
            if hit is None:
                break
            hits.append(hit.facility_id)
        assert first.facility_id not in hits
        assert hits == [2]

    def test_candidate_mode_skips_facility_file_reads(self, tiny_graph, tiny_facilities):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        query = NetworkLocation.at_node(3)
        expansion = expansion_for(accessor, tiny_graph, query, 0)
        expansion.enter_candidate_mode({})
        before = accessor.statistics.facility_requests
        while expansion.next_facility() is not None:
            pass
        assert accessor.statistics.facility_requests == before

    def test_heap_pops_counted(self, accessor, tiny_graph):
        expansion = expansion_for(accessor, tiny_graph, NetworkLocation.at_node(3), 0)
        expansion.next_facility()
        assert expansion.heap_pops > 0


class TestExpansionOnGeneratedNetwork:
    def test_matches_dijkstra_on_workload(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        accessor = InMemoryAccessor(graph, facilities)
        query = small_workload.queries[0]
        truth = facility_vectors(graph, facilities, query)
        expansion = expansion_for(accessor, graph, query, 1)
        observed = {}
        while True:
            hit = expansion.next_facility()
            if hit is None:
                break
            observed[hit.facility_id] = hit.cost
        expected = {fid: vector[1] for fid, vector in truth.items()}
        assert set(observed) == set(expected)
        for fid, cost in observed.items():
            assert cost == pytest.approx(expected[fid])

    def test_directed_graph_expansion(self):
        graph = MultiCostGraph(1, directed=True)
        for node_id in range(4):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0])
        graph.add_edge(1, 2, [1.0])
        graph.add_edge(2, 3, [1.0])
        graph.add_edge(3, 0, [1.0])
        facilities = FacilitySet(graph)
        facilities.add_on_edge(0, 2, 0.5)  # halfway along edge 2-3
        accessor = InMemoryAccessor(graph, facilities)
        expansion = expansion_for(accessor, graph, NetworkLocation.at_node(0), 0)
        hit = expansion.next_facility()
        assert hit.cost == pytest.approx(2.5)
