"""The resilience layer under seeded chaos: drain, journal, retry, faults.

Unit suites per subsystem (lifecycle machine, idempotency cache, retry
policy, fault plane, journal recovery), integration suites for the serving
behaviours they compose into (idempotent endpoints, graceful drain, sever
accounting, dataset degradation, worker-death recovery), and the flagship
chaos differential: a seeded fault schedule — injected disk faults,
injected session crashes, severed client connections, one worker kill and
one mid-replay *restart* — driven through the serving tier, with every
acknowledged payload compared against a sequential oracle and the final
facility set checked for lost or double-applied ticks.

``REPRO_CHAOS_SEED`` reseeds the whole chaos run from the environment —
CI runs one pinned seed and one randomized seed per build, logging the
seed so any failure replays locally.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import threading

import pytest

from repro.api import ExecutionPolicy, Session
from repro.bench.driver import ServeReplaySpec, format_serve_report, replay_serve_workload
from repro.core.engine import MCNQueryEngine
from repro.datagen import WorkloadSpec, make_workload
from repro.datagen.updates import UpdateStreamSpec, make_update_stream
from repro.errors import (
    JournalError,
    JournalMismatchError,
    RetryBudgetExceededError,
    ServeError,
    StorageError,
)
from repro.monitor.stream import tick_from_payload, tick_to_payload
from repro.network.facilities import FacilitySet
from repro.parallel import ShardedQueryService
from repro.parallel import service as parallel_service
from repro.serve import (
    FaultPlane,
    HttpServer,
    IdempotencyCache,
    InProcessClient,
    InjectedFault,
    JobJournal,
    RetryPolicy,
    RetryingClient,
    ServeApp,
    ServeConfig,
    ServerLifecycle,
    batch_response_to_payload,
    collect_events,
    execute_fault_hook,
    faulty_disk,
    query_response_to_payload,
    send_with_retry,
    session_fault_hook,
    tick_response_to_payload,
    worker_fault_hook,
)
from repro.serve.journal import _frame
from repro.service.requests import SkylineRequest, request_from_payload, request_to_payload
from repro.storage import SimulatedDisk
from repro.storage.pages import PageKind

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20260808"))

_WORKLOAD = make_workload(
    WorkloadSpec(num_nodes=90, num_facilities=24, num_cost_types=2, num_queries=6, seed=47)
)


def _session():
    return Session(
        _WORKLOAD.graph, FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))
    )


def _app(session=None, *, journal=None, **config):
    return ServeApp(
        session if session is not None else _session(),
        config=ServeConfig(**config),
        journal=journal,
    )


def _query_payload(index: int = 0):
    return {"request": request_to_payload(SkylineRequest(_WORKLOAD.queries[index]))}


def _tick_payloads(count: int, *, seed: int = 11, updates: int = 2):
    stream = make_update_stream(
        _WORKLOAD.graph,
        FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities)),
        UpdateStreamSpec(
            num_ticks=count,
            updates_per_tick=updates,
            insert_fraction=0.5,
            delete_fraction=0.5,
            relocate_fraction=0.0,
            seed=seed,
        ),
    )
    return [{"updates": tick_to_payload(tick)} for tick in stream]


def _run(coro):
    return asyncio.run(coro)


def _strip(payload):
    """Drop wall-clock, I/O-counter and ticket fields recursively."""
    if isinstance(payload, dict):
        return {
            key: _strip(value)
            for key, value in payload.items()
            if key not in ("elapsed_seconds", "io", "ticket")
        }
    if isinstance(payload, list):
        return [_strip(item) for item in payload]
    return payload


def _facility_ids(session) -> list:
    return sorted(session.facilities.facility_ids())


# ---------------------------------------------------------------------- #
# Lifecycle state machine
# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_canonical_progression(self):
        lifecycle = ServerLifecycle()
        assert lifecycle.state == "starting" and lifecycle.accepting
        lifecycle.mark_serving()
        lifecycle.degrade("pack checksum failed")
        assert lifecycle.state == "degraded"
        assert lifecycle.degraded_reason == "pack checksum failed"
        assert lifecycle.accepting
        lifecycle.recover()
        assert lifecycle.state == "serving" and lifecycle.degraded_reason is None
        lifecycle.begin_drain()
        assert lifecycle.draining and not lifecycle.accepting
        lifecycle.mark_closed()
        assert lifecycle.closed

    def test_illegal_transitions_raise(self):
        lifecycle = ServerLifecycle()
        lifecycle.begin_drain()
        with pytest.raises(ServeError, match="illegal lifecycle transition"):
            lifecycle.advance("serving")
        with pytest.raises(ServeError, match="unknown lifecycle state"):
            lifecycle.advance("rebooting")

    def test_degrade_from_starting_passes_through_serving(self):
        lifecycle = ServerLifecycle()
        lifecycle.degrade("early fault")
        assert lifecycle.state == "degraded"
        assert lifecycle.degraded_reason == "early fault"

    def test_mark_closed_is_terminal_from_any_state(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_closed()
        assert lifecycle.closed
        lifecycle.mark_closed()  # idempotent
        with pytest.raises(ServeError, match="illegal lifecycle transition"):
            lifecycle.advance("serving")

    def test_snapshot_counts_transitions(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_serving()
        lifecycle.degrade("x")
        lifecycle.degrade("y")  # refreshes the reason, not a transition
        assert lifecycle.snapshot() == {
            "state": "degraded", "degraded_reason": "y", "transitions": 2,
        }


# ---------------------------------------------------------------------- #
# Idempotency cache + retry policy units
# ---------------------------------------------------------------------- #
class TestIdempotencyCache:
    def test_lru_eviction_and_counters(self):
        cache = IdempotencyCache(2)
        cache.store("a", "fa", 200, {"n": 1})
        cache.store("b", "fb", 200, {"n": 2})
        assert cache.lookup("a").payload == {"n": 1}  # refreshes a
        cache.store("c", "fc", 200, {"n": 3})  # evicts b, the oldest
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None and cache.lookup("c") is not None
        assert cache.evicted == 1 and cache.stored == 3 and cache.hits == 3
        assert len(cache) == 2
        snapshot = cache.snapshot()
        assert snapshot["capacity"] == 2 and snapshot["size"] == 2


class TestRetryPolicy:
    def test_delay_is_jittered_and_capped(self):
        policy = RetryPolicy(base_delay_seconds=0.1, max_delay_seconds=0.3)
        rng = random.Random(7)
        for attempt, cap in ((0, 0.1), (1, 0.2), (2, 0.3), (6, 0.3)):
            for _ in range(50):
                assert 0.0 <= policy.delay_for(attempt, rng=rng) <= cap

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_delay_seconds=0.001, max_delay_seconds=0.002)
        delay = policy.delay_for(0, rng=random.Random(1), retry_after=1.5)
        assert delay >= 1.5

    def test_fatal_codes_beat_retryable_statuses(self):
        policy = RetryPolicy()
        assert policy.is_retryable(503, "draining")
        assert not policy.is_retryable(503, "closed")
        assert not policy.is_retryable(400, "invalid-request")

    def test_validation(self):
        with pytest.raises(ServeError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServeError, match="budget_seconds"):
            RetryPolicy(budget_seconds=0.0)

    def test_send_with_retry_rides_out_transients(self):
        class _Answer:
            def __init__(self, status, payload):
                self.status, self.payload = status, payload

        answers = [
            _Answer(429, {"error": {"code": "saturated", "message": "busy"}}),
            ConnectionResetError("severed"),
            _Answer(200, {"ok": True}),
        ]
        sleeps = []

        async def send():
            answer = answers.pop(0)
            if isinstance(answer, BaseException):
                raise answer
            return answer

        async def sleep(delay):
            sleeps.append(delay)

        response = _run(send_with_retry(send, sleep=sleep, rng=random.Random(3)))
        assert response.payload == {"ok": True}
        assert len(sleeps) == 2

    def test_send_with_retry_exhausts_attempts(self):
        class _Answer:
            status = 503
            payload = {"error": {"code": "dataset-unavailable", "message": "no"}}

        async def send():
            return _Answer()

        async def sleep(_delay):
            pass

        policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.0)
        with pytest.raises(RetryBudgetExceededError) as info:
            _run(send_with_retry(send, policy=policy, sleep=sleep))
        assert info.value.attempts == 3 and info.value.status == 503

    def test_send_with_retry_respects_the_wallclock_budget(self):
        class _Answer:
            status = 503
            payload = {
                "error": {"code": "draining", "message": "later", "retry_after": 10.0}
            }

        async def send():
            return _Answer()

        async def sleep(_delay):  # pragma: no cover - the budget refuses the sleep
            raise AssertionError("the budget should refuse a 10s retry_after sleep")

        policy = RetryPolicy(max_attempts=5, budget_seconds=1.0)
        with pytest.raises(RetryBudgetExceededError) as info:
            _run(send_with_retry(send, policy=policy, sleep=sleep))
        assert info.value.attempts == 1


# ---------------------------------------------------------------------- #
# Fault plane
# ---------------------------------------------------------------------- #
class TestFaultPlane:
    def test_at_schedule_counts_invocations_per_point(self):
        plane = FaultPlane()
        plane.schedule("disk.read", at=(1, 3))
        fired = [plane.should_fire("disk.read") for _ in range(5)]
        assert fired == [False, True, False, True, False]
        assert plane.invocations("disk.read") == 5
        assert plane.fired["disk.read"] == 2
        assert plane.should_fire("other.point") is False

    def test_probability_schedule_is_seeded_and_capped(self):
        def run(seed):
            plane = FaultPlane(seed)
            plane.schedule("session.query", probability=0.5, times=3)
            return [plane.should_fire("session.query") for _ in range(40)]

        assert run(9) == run(9)
        assert sum(run(9)) == 3  # the times cap holds

    def test_explicit_index_is_stateless(self):
        plane = FaultPlane()
        plane.schedule("worker.kill", at=2)
        assert plane.should_fire("worker.kill", index=2)
        assert plane.should_fire("worker.kill", index=2)  # no counter consumed
        assert not plane.should_fire("worker.kill", index=0)

    def test_schedule_validation(self):
        plane = FaultPlane()
        with pytest.raises(ServeError, match="exactly"):
            plane.schedule("p")
        with pytest.raises(ServeError, match="exactly"):
            plane.schedule("p", at=0, probability=0.5)
        with pytest.raises(ServeError, match="probability"):
            plane.schedule("p", probability=1.5)

    def test_faulty_disk_raises_storage_error_on_schedule(self):
        disk = SimulatedDisk(page_size=256)
        page = disk.allocate(PageKind.ADJACENCY)
        plane = FaultPlane()
        plane.schedule("disk.read", at=1)
        wrapped = faulty_disk(disk, plane)
        assert wrapped.read(page.page_id) is page  # invocation 0 delegates
        with pytest.raises(StorageError, match="injected disk fault"):
            wrapped.read(page.page_id)
        assert wrapped.page_size == 256  # attribute delegation

    def test_session_fault_hook_raises_injected_fault(self):
        plane = FaultPlane()
        plane.schedule("session.query", at=0)
        session = _session()
        session.fault_hook = session_fault_hook(plane)
        with pytest.raises(InjectedFault):
            session.query(SkylineRequest(_WORKLOAD.queries[0]))
        # the schedule is spent; the session works again
        assert session.query(SkylineRequest(_WORKLOAD.queries[0])).result is not None
        session.close()


# ---------------------------------------------------------------------- #
# Idempotency over the wire
# ---------------------------------------------------------------------- #
class TestIdempotentEndpoints:
    def test_retried_tick_applies_exactly_once(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            async with app:
                tick = _tick_payloads(1)[0]
                headers = {"idempotency-key": "tick-1"}
                first = await client.patch("/v1/facilities", tick, headers=headers)
                assert first.status == 200
                after_first = _facility_ids(app.session)
                second = await client.patch("/v1/facilities", tick, headers=headers)
                assert second.status == 200
                assert second.payload == first.payload  # replayed, not re-applied
                assert _facility_ids(app.session) == after_first
                assert app.idempotency.hits == 1
                metrics = (await client.get("/v1/metrics")).payload
                assert metrics["idempotency"]["stored"] == 1

        _run(scenario())

    def test_key_reuse_with_a_different_body_conflicts(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            async with app:
                headers = {"idempotency-key": "k"}
                first = await client.post("/v1/query", _query_payload(0), headers=headers)
                assert first.status == 200
                clash = await client.post("/v1/query", _query_payload(1), headers=headers)
                assert clash.status == 409
                assert clash.payload["error"]["code"] == "conflict"
                assert "retry_after" not in clash.payload["error"]
                assert app.idempotency.conflicts == 1

        _run(scenario())

    def test_in_flight_duplicate_conflicts_with_retry_hint(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            release = threading.Event()
            app.before_execute = lambda _label: release.wait(timeout=5)
            async with app:
                headers = {"idempotency-key": "dup"}
                first = asyncio.create_task(
                    client.post("/v1/query", _query_payload(0), headers=headers)
                )
                await asyncio.sleep(0.05)
                second = await client.post("/v1/query", _query_payload(0), headers=headers)
                assert second.status == 409
                assert second.payload["error"]["retry_after"] > 0
                app.before_execute = None
                release.set()
                assert (await first).status == 200

        _run(scenario())

    def test_error_answers_are_not_cached(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            plane = FaultPlane()
            plane.schedule("execute.query", at=0)
            app.before_execute = execute_fault_hook(plane)
            async with app:
                headers = {"idempotency-key": "once"}
                failed = await client.post("/v1/query", _query_payload(0), headers=headers)
                assert failed.status == 500
                assert failed.payload["error"]["code"] == "internal"
                retried = await client.post("/v1/query", _query_payload(0), headers=headers)
                assert retried.status == 200  # the failure was not replayed

        _run(scenario())

    def test_retrying_client_replays_a_severed_mutation_without_reapplying(self):
        async def scenario():
            app = _app()
            plane = FaultPlane()
            plane.schedule("connection.send", at=0)
            client = RetryingClient(
                InProcessClient(app, fault_plane=plane),
                policy=RetryPolicy(base_delay_seconds=0.001, max_delay_seconds=0.01),
                seed=5,
            )
            async with app:
                response = await client.patch("/v1/facilities", _tick_payloads(1)[0])
                assert response.status == 200
                assert client.retries == 1  # the sever cost one retry
                # applied once: the idempotency cache answered the retry
                assert app.idempotency.hits == 1
                metrics = app.metrics()
                assert metrics["severed"] == 1

        _run(scenario())


# ---------------------------------------------------------------------- #
# Drain
# ---------------------------------------------------------------------- #
class TestDrain:
    def test_drain_finishes_in_flight_work_then_refuses_new(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            release = threading.Event()
            started = threading.Event()

            def hold(_label):
                started.set()
                release.wait(timeout=5)

            app.before_execute = hold
            async with app:
                in_flight = asyncio.create_task(
                    client.post("/v1/query", _query_payload(0))
                )
                await asyncio.to_thread(started.wait, 5)
                drain = asyncio.create_task(app.drain(deadline=5.0))
                await asyncio.sleep(0.02)
                assert app.lifecycle.draining
                refused = await client.post("/v1/query", _query_payload(1))
                assert refused.status == 503
                assert refused.payload["error"]["code"] == "draining"
                assert refused.payload["error"]["retry_after"] > 0
                health = await client.get("/v1/health")
                assert health.payload["state"] == "draining"
                app.before_execute = None
                release.set()
                held = await in_flight
                assert held.status == 200  # acknowledged work was NOT dropped
                report = await drain
                assert report.clean and report.jobs_cancelled == 0
                assert app.closed

        _run(scenario())

    def test_forced_drain_cancels_jobs_and_reports_it(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            release = threading.Event()
            app.before_execute = lambda _label: release.wait(timeout=5)
            async with app:
                ack = await client.post(
                    "/v1/batch", {"requests": [_query_payload(0)["request"]]}
                )
                assert ack.status == 202
                await asyncio.sleep(0.02)
                drain = asyncio.create_task(app.drain(deadline=0.05))
                await asyncio.sleep(0.15)
                release.set()  # free the executor so the close can finish
                report = await drain
                assert report.forced and report.jobs_cancelled == 1
                assert not report.journal_closed
                poll = await client.get(f"/v1/batch/{ack.payload['job']}")
                assert poll.payload["error"]["code"] == "closed"

        _run(scenario())

    def test_drain_sends_terminal_event_to_streams(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            async with app:
                subscribed = await client.post(
                    "/v1/subscriptions", {"request": _query_payload(0)["request"]}
                )
                assert subscribed.status == 201
                sid = subscribed.payload["subscription"]
                stream = await client.stream(sid)
                report = await app.drain(deadline=1.0)
                assert report.clean and report.streams_closed == 1
                events = await collect_events(stream)
                assert events[-1].event == "server-closing"

        _run(scenario())

    def test_drain_on_a_closed_app_is_trivially_clean(self):
        async def scenario():
            app = _app()
            await app.aclose()
            report = await app.drain()
            assert report.clean and report.waited_seconds == 0.0

        _run(scenario())


# ---------------------------------------------------------------------- #
# The load-replay drain harness (bench driver integration)
# ---------------------------------------------------------------------- #
class TestDrainUnderLoad:
    SPEC = dict(
        workload=WorkloadSpec(
            num_nodes=120, num_facilities=30, num_cost_types=2, num_queries=6, seed=11
        ),
        duplicates=3,
        ticks=2,
        updates_per_tick=2,
        clients=4,
    )

    def test_drain_mid_load_keeps_every_acknowledged_payload(self, tmp_path):
        path = str(tmp_path / "replay-journal.jsonl")
        report = replay_serve_workload(
            ServeReplaySpec(**self.SPEC, drain_after=5, journal_path=path)
        )
        assert report.drain is not None and report.drain["clean"]
        # zero dropped acknowledged requests: every acked payload matched
        assert report.clean and report.mismatched_ops == []
        assert report.metrics["lifecycle"]["state"] == "closed"
        # a clean drain recorded the journal's close marker
        assert report.metrics["journal"]["clean_close_recorded"]
        text = format_serve_report(report)
        assert "drain" in text

    def test_undrained_replay_reports_no_drain(self):
        report = replay_serve_workload(ServeReplaySpec(**self.SPEC))
        assert report.drain is None and report.unserved_ops == 0
        assert report.clean


# ---------------------------------------------------------------------- #
# Dataset faults degrade, never 500
# ---------------------------------------------------------------------- #
class TestDatasetUnavailable:
    def test_storage_error_becomes_503_and_degraded_health(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            plane = FaultPlane()
            plane.schedule("disk.read", at=0)

            def disk_fault(_label):
                if plane.should_fire("disk.read"):
                    raise StorageError("pack page 7 failed its checksum")

            app.before_execute = disk_fault
            async with app:
                broken = await client.post("/v1/query", _query_payload(0))
                assert broken.status == 503
                assert broken.payload["error"]["code"] == "dataset-unavailable"
                assert broken.payload["error"]["retry_after"] > 0
                assert "Traceback" not in broken.payload["error"]["message"]
                health = await client.get("/v1/health")
                assert health.payload["status"] == "degraded"
                metrics = (await client.get("/v1/metrics")).payload
                assert metrics["lifecycle"]["state"] == "degraded"
                assert "checksum" in metrics["lifecycle"]["degraded_reason"]
                # the next successful work-class request recovers the state
                healed = await client.post("/v1/query", _query_payload(0))
                assert healed.status == 200
                assert (await client.get("/v1/health")).payload["status"] == "ok"

        _run(scenario())


# ---------------------------------------------------------------------- #
# Severed connections release their admission slot
# ---------------------------------------------------------------------- #
class TestSeverAccounting:
    def test_in_process_sever_releases_slot_and_counts_severed(self):
        async def scenario():
            app = _app()
            plane = FaultPlane()
            plane.schedule("connection.send", at=0)
            client = InProcessClient(app, fault_plane=plane)
            async with app:
                with pytest.raises(ConnectionResetError):
                    await client.post("/v1/query", _query_payload(0))
                assert app.admission.in_flight == 0  # the slot was released
                metrics = (await client.get("/v1/metrics")).payload
                assert metrics["severed"] == 1
                # the computed-but-undelivered answer is not counted served
                assert metrics["served"] == metrics["requests"] - metrics["errors"] - 1

        _run(scenario())

    def test_http_sever_before_response_write_releases_slot(self):
        async def scenario():
            app = _app()
            plane = FaultPlane()
            plane.schedule("connection.send", at=0)
            async with app, HttpServer(app, port=0, fault_plane=plane) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                body = json.dumps(_query_payload(0)).encode()
                writer.write(
                    b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
                try:
                    answer = await reader.read()
                except ConnectionResetError:
                    answer = b""
                assert answer == b""  # aborted before anything was written
                writer.close()
                await asyncio.sleep(0.05)
                assert app.admission.in_flight == 0
                metrics = (await InProcessClient(app).get("/v1/metrics")).payload
                assert metrics["severed"] == 1
                assert metrics["served"] == metrics["requests"] - metrics["errors"] - 1

        _run(scenario())

    def test_client_vanishing_mid_body_is_not_an_admission_leak(self):
        async def scenario():
            app = _app()
            async with app, HttpServer(app, port=0) as server:
                _reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(
                    b"POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: 500\r\n\r\ntru"
                )
                await writer.drain()
                writer.close()  # vanish before the body arrives
                await asyncio.sleep(0.05)
                assert app.admission.in_flight == 0
                follow_up = await InProcessClient(app).post(
                    "/v1/query", _query_payload(0)
                )
                assert follow_up.status == 200

        _run(scenario())


# ---------------------------------------------------------------------- #
# Journal recovery edge cases
# ---------------------------------------------------------------------- #
class TestJournalRecovery:
    @staticmethod
    async def _poll(client, job_id, tries=600):
        poll = None
        for _ in range(tries):
            poll = await client.get(f"/v1/batch/{job_id}")
            if poll.payload["state"] in ("done", "failed"):
                return poll.payload
            await asyncio.sleep(0.01)
        raise AssertionError(f"job {job_id} never finished: {poll.payload}")

    def test_round_trip_recovers_jobs_and_ticks(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")

        async def first_process():
            session = _session()
            journal = JobJournal(
                path, fingerprint=session.dataset_fingerprint(), sync=False
            )
            app = ServeApp(session, journal=journal)
            client = InProcessClient(app)
            async with app:
                tick = await client.patch(
                    "/v1/facilities", _tick_payloads(1)[0],
                    headers={"idempotency-key": "t0"},
                )
                assert tick.status == 200
                done = await client.post(
                    "/v1/batch", {"requests": [_query_payload(0)["request"]]}
                )
                poll = await self._poll(client, done.payload["job"])
                assert poll["state"] == "done"
                hold = threading.Event()
                app.before_execute = lambda _label: hold.wait(timeout=0.2)
                pending = await client.post(
                    "/v1/batch", {"requests": [_query_payload(1)["request"]]}
                )
                assert pending.status == 202
                # hard stop (no drain, no close record): the second job is
                # acknowledged in the journal but never finishes
                return tick.payload, poll, done.payload["job"], pending.payload["job"]

        tick_payload, finished, done_id, pending_id = _run(first_process())

        async def second_process():
            session = _session()
            journal = JobJournal(
                path, fingerprint=session.dataset_fingerprint(), sync=False
            )
            assert not journal.recovery.clean_close
            app = ServeApp(session, journal=journal)
            client = InProcessClient(app)
            async with app:
                summary = app.last_recovery
                assert summary["jobs"] == 2
                assert summary["ticks_reapplied"] == 1
                # the finished job answers from the journal, no recompute
                replayed = await client.get(f"/v1/batch/{done_id}")
                assert replayed.payload["result"] == finished["result"]
                # the acknowledged-but-unfinished job was re-executed
                poll = await self._poll(client, pending_id)
                assert poll["state"] == "done"
                # a client retrying the acknowledged tick gets the original
                # answer; the update is NOT applied twice
                before = _facility_ids(app.session)
                retried = await client.patch(
                    "/v1/facilities", _tick_payloads(1)[0],
                    headers={"idempotency-key": "t0"},
                )
                assert retried.payload == tick_payload
                assert _facility_ids(app.session) == before
                # new job ids continue past the recovered counter
                fresh = await client.post(
                    "/v1/batch", {"requests": [_query_payload(2)["request"]]}
                )
                numbers = [int(j.rsplit("-", 1)[1]) for j in (done_id, pending_id)]
                assert int(fresh.payload["job"].rsplit("-", 1)[1]) > max(numbers)
                await self._poll(client, fresh.payload["job"])
                report = await app.drain(deadline=5.0)
                assert report.clean and report.journal_closed

        _run(second_process())
        third = JobJournal(
            path, fingerprint=_session().dataset_fingerprint(), sync=False
        )
        assert third.recovery.clean_close
        third.close()

    def test_torn_final_record_is_truncated(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        journal = JobJournal(path, fingerprint="shape:abc", sync=False)
        journal.record_job_submitted("job-1", [{"kind": "skyline"}], None)
        journal.close()
        with open(path, "ab") as handle:
            handle.write(_frame({"type": "job", "job": "job-2", "requests": []})[:-9])
        reopened = JobJournal(path, fingerprint="shape:abc", sync=False)
        assert reopened.recovery.truncated_bytes > 0
        assert list(reopened.recovery.jobs) == ["job-1"]
        reopened.close()
        # the torn bytes were physically truncated: a third open is clean
        third = JobJournal(path, fingerprint="shape:abc", sync=False)
        assert third.recovery.truncated_bytes == 0
        third.close()

    def test_interior_corruption_refuses_with_journal_error(self, tmp_path):
        path = str(tmp_path / "corrupt.jsonl")
        journal = JobJournal(path, fingerprint="shape:abc", sync=False)
        journal.record_job_submitted("job-1", [], None)
        journal.close()
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(b"xx" + raw[2:])  # damage the open header, keep the rest
        with pytest.raises(JournalError, match="corrupt at byte 0"):
            JobJournal(path, fingerprint="shape:abc", sync=False)

    def test_fingerprint_mismatch_refuses_with_typed_error(self, tmp_path):
        path = str(tmp_path / "mismatch.jsonl")
        journal = JobJournal(path, fingerprint="pack:deadbeef", sync=False)
        journal.record_job_submitted("job-1", [], None)
        journal.close()
        with pytest.raises(JournalMismatchError, match="stale"):
            JobJournal(path, fingerprint="pack:cafebabe", sync=False)

    def test_duplicate_job_ids_collapse_to_the_newest_record(self, tmp_path):
        path = str(tmp_path / "dup.jsonl")
        with open(path, "wb") as handle:
            handle.write(
                _frame({"type": "open", "version": 1, "fingerprint": "shape:abc"})
            )
            handle.write(_frame({"type": "job", "job": "job-1", "requests": [{"v": 1}]}))
            handle.write(_frame({"type": "job", "job": "job-1", "requests": [{"v": 2}]}))
        journal = JobJournal(path, fingerprint="shape:abc", sync=False)
        assert len(journal.recovery.jobs) == 1
        assert journal.recovery.max_job_number == 1
        journal.close()

    def test_records_after_a_close_marker_reopen_the_journal(self, tmp_path):
        path = str(tmp_path / "reopened.jsonl")
        journal = JobJournal(path, fingerprint="shape:abc", sync=False)
        journal.record_close()
        journal.close()
        second = JobJournal(path, fingerprint="shape:abc", sync=False)
        assert second.recovery.clean_close
        second.record_job_submitted("job-1", [], None)
        second.close()
        third = JobJournal(path, fingerprint="shape:abc", sync=False)
        assert not third.recovery.clean_close  # work followed the close marker
        assert list(third.recovery.jobs) == ["job-1"]
        third.close()

    def test_unknown_record_type_refuses(self, tmp_path):
        path = str(tmp_path / "unknown.jsonl")
        with open(path, "wb") as handle:
            handle.write(
                _frame({"type": "open", "version": 1, "fingerprint": "shape:abc"})
            )
            handle.write(_frame({"type": "compactions", "n": 3}))
        with pytest.raises(JournalError, match="unknown record type"):
            JobJournal(path, fingerprint="shape:abc", sync=False)

    def test_version_skew_refuses(self, tmp_path):
        path = str(tmp_path / "versioned.jsonl")
        with open(path, "wb") as handle:
            handle.write(
                _frame({"type": "open", "version": 99, "fingerprint": "shape:abc"})
            )
        with pytest.raises(JournalError, match="format version"):
            JobJournal(path, fingerprint="shape:abc", sync=False)

    def test_dataset_fingerprint_is_stable_and_shape_sensitive(self):
        assert _session().dataset_fingerprint() == _session().dataset_fingerprint()
        other = make_workload(
            WorkloadSpec(
                num_nodes=60, num_facilities=10, num_cost_types=2, num_queries=2, seed=3
            )
        )
        different = Session(
            other.graph, FacilitySet(other.graph, iter(other.facilities))
        )
        assert different.dataset_fingerprint() != _session().dataset_fingerprint()
        different.close()

    def test_fingerprint_describes_the_pristine_workload(self):
        # Ticks mutate the facility set; the fingerprint must not move, or
        # a journal reopen against the same dataset would refuse itself.
        session = _session()
        before = session.dataset_fingerprint()
        handle = session.monitor(())
        handle.tick(tick_from_payload(_tick_payloads(1)[0]["updates"]))
        assert session.dataset_fingerprint() == before
        session.close()


# ---------------------------------------------------------------------- #
# Worker death and hang recovery (sharded execution layer)
# ---------------------------------------------------------------------- #
class TestWorkerFaults:
    def _run_sharded(self, *, executor="process", hook=None, shard_timeout=None):
        engine = MCNQueryEngine(_WORKLOAD.graph, _WORKLOAD.facilities)
        requests = [SkylineRequest(q) for q in _WORKLOAD.queries[:4]]
        service = ShardedQueryService(
            engine, policy=ExecutionPolicy(workers=2, executor=executor)
        )
        parallel_service.set_worker_fault_hook(hook)
        parallel_service.set_shard_timeout(shard_timeout)
        try:
            return service.run_batch(requests)
        finally:
            parallel_service.set_worker_fault_hook(None)
            parallel_service.set_shard_timeout(None)

    def test_killed_worker_shard_retries_on_the_parent(self):
        baseline = self._run_sharded(executor="serial")
        plane = FaultPlane(seed=CHAOS_SEED)
        plane.schedule("worker.kill", at=0)
        survived = self._run_sharded(hook=worker_fault_hook(plane))
        assert survived.retried_shards  # the pool broke and shards re-ran
        assert [o.result.facilities for o in survived.outcomes] == [
            o.result.facilities for o in baseline.outcomes
        ]
        assert survived.describe()["retried_shards"] == list(survived.retried_shards)

    def test_hung_worker_shard_retries_after_the_deadline(self):
        baseline = self._run_sharded(executor="serial")
        plane = FaultPlane(seed=CHAOS_SEED)
        plane.schedule("worker.hang", at=1)
        survived = self._run_sharded(
            hook=worker_fault_hook(plane, hang_seconds=30.0), shard_timeout=0.25
        )
        assert 1 in survived.retried_shards
        assert [o.result.facilities for o in survived.outcomes] == [
            o.result.facilities for o in baseline.outcomes
        ]

    def test_clean_run_reports_no_retried_shards(self):
        report = self._run_sharded()
        assert report.retried_shards == ()


# ---------------------------------------------------------------------- #
# The chaos differential
# ---------------------------------------------------------------------- #
class TestChaosDifferential:
    """Seeded faults + severs + one worker kill + one mid-replay restart.

    Two epochs over one journal.  Epoch 0 serves concurrent lanes through
    a fault-ridden transport (injected disk faults, injected session
    crashes, severed acks) behind a retrying client, acknowledges a
    sharded batch job, and then the process "crashes" (hard close, no
    drain).  Epoch 1 recovers on a fresh session: journaled ticks re-apply
    exactly once, the acknowledged job re-executes — through a worker kill
    — and more chaos lanes run before a clean drain.  Every acknowledged
    payload must match a single sequential oracle replaying the
    acknowledged operations in ``seq`` order with the re-executed job at
    the restart boundary, and the surviving facility sets must agree (no
    tick lost, none applied twice).
    """

    def test_acknowledged_work_matches_the_sequential_oracle(self, tmp_path):
        seed = CHAOS_SEED
        print(f"chaos seed: {seed}")  # pytest -s replays any failure locally
        path = str(tmp_path / f"chaos-{seed}.jsonl")
        queries = [_query_payload(i % len(_WORKLOAD.queries)) for i in range(10)]
        ticks = _tick_payloads(4, seed=seed % 1000 + 3)
        epoch0 = [("q", f"q{i}", queries[i]) for i in range(6)]
        epoch0 += [("t", f"t{i}", ticks[i]) for i in range(2)]
        epoch1 = [("q", f"q{i}", queries[i]) for i in range(6, 10)]
        epoch1 += [("t", f"t{i}", ticks[i]) for i in range(2, 4)]
        batch_requests = [q["request"] for q in queries[:3]]
        batch_policy = {"workers": 2, "executor": "process"}

        plane = FaultPlane(seed)
        plane.schedule("disk.read", probability=0.2, times=2)
        plane.schedule("session.query", probability=0.15, times=2)
        plane.schedule("connection.send", probability=0.15, times=3)
        plane.schedule("worker.kill", at=0)
        chaos_policy = RetryPolicy(
            max_attempts=10,
            base_delay_seconds=0.001,
            max_delay_seconds=0.01,
            budget_seconds=30.0,
            # injected session faults surface as 500 internal — exactly like
            # a real unforeseen crash — so the chaos client retries them too
            retryable_statuses=(409, 429, 500, 503, 504),
        )

        def disk_fault(_label):
            if plane.should_fire("disk.read"):
                raise StorageError(f"injected pack read failure (seed {seed})")

        acked: dict[str, tuple[int, dict]] = {}

        async def fire(epoch, app, ops, serial_prefix=0):
            client = RetryingClient(
                InProcessClient(app, fault_plane=plane),
                policy=chaos_policy,
                seed=seed + epoch,
                key_prefix=f"e{epoch}",
            )

            async def run_op(op):
                kind, op_id, payload = op
                if kind == "q":
                    response = await client.post("/v1/query", payload)
                else:
                    # explicit keys so the restart phase can replay a tick
                    # with the key its original acknowledgement used
                    response = await client.patch(
                        "/v1/facilities", payload, idempotency_key=f"chaos-{op_id}"
                    )
                assert response.ok, (op_id, response.payload)
                acked[op_id] = (epoch, response.payload)

            for op in ops[:serial_prefix]:
                await run_op(op)
            rest = ops[serial_prefix:]
            tick_lane = [op for op in rest if op[0] == "t"]
            query_ops = [op for op in rest if op[0] == "q"]

            async def lane(lane_ops):
                for op in lane_ops:
                    await run_op(op)

            await asyncio.gather(
                lane(tick_lane), lane(query_ops[0::2]), lane(query_ops[1::2])
            )

        async def epoch_zero():
            session = _session()
            session.fault_hook = session_fault_hook(plane)
            journal = JobJournal(
                path, fingerprint=session.dataset_fingerprint(), sync=False
            )
            app = ServeApp(session, journal=journal)
            async with app:
                app.before_execute = disk_fault
                await fire(0, app, epoch0)
                ack = await InProcessClient(app).post(
                    "/v1/batch",
                    {"requests": batch_requests, "policy": batch_policy},
                )
                assert ack.status == 202
                return ack.payload["job"]
            # exiting the context is the crash: a hard close with no drain
            # and no clean-close record — the acknowledged job is lost work
            # unless the journal brings it back

        async def epoch_one(job_id):
            session = _session()
            session.fault_hook = session_fault_hook(plane)
            journal = JobJournal(
                path, fingerprint=session.dataset_fingerprint(), sync=False
            )
            assert not journal.recovery.clean_close
            app = ServeApp(session, journal=journal)
            # arm the worker kill for the recovery's job re-execution: shard
            # 0's pool worker dies hard (the kill point fires in the forked
            # child, so the parent plane never sees it — the proof of
            # survival is the job finishing with oracle-identical results)
            parallel_service.set_worker_fault_hook(worker_fault_hook(plane))
            try:
                async with app:
                    assert app.last_recovery["ticks_reapplied"] == 2
                    client = InProcessClient(app)
                    job = await TestJournalRecovery._poll(client, job_id)
                    assert job["state"] == "done", job
                    # a tick acknowledged before the crash, retried with its
                    # original idempotency key, answers from the journal
                    # instead of double-applying
                    before = _facility_ids(app.session)
                    replay = await client.patch(
                        "/v1/facilities", ticks[0],
                        headers={"idempotency-key": "chaos-t0"},
                    )
                    assert replay.status == 200
                    assert replay.payload == acked["t0"][1]
                    assert _facility_ids(app.session) == before
                    await fire(1, app, epoch1, serial_prefix=1)
                    survivors = _facility_ids(app.session)
                    report = await app.drain(deadline=10.0)
                    assert report.clean and report.journal_closed
                    return job["result"], survivors
            finally:
                parallel_service.set_worker_fault_hook(None)

        job_id = _run(epoch_zero())
        job_result, survivors = _run(epoch_one(job_id))
        closing = JobJournal(
            path, fingerprint=_session().dataset_fingerprint(), sync=False
        )
        assert closing.recovery.clean_close
        closing.close()

        # ---- the sequential oracle ----------------------------------- #
        assert len(acked) == len(epoch0) + len(epoch1), "an acknowledged op was lost"
        all_ops = {op_id: (kind, payload) for kind, op_id, payload in epoch0 + epoch1}
        order = sorted(
            acked, key=lambda op_id: (acked[op_id][0], acked[op_id][1]["seq"])
        )
        epoch0_ids = [op_id for op_id in order if acked[op_id][0] == 0]
        epoch1_ids = [op_id for op_id in order if acked[op_id][0] == 1]

        with _session() as oracle:
            handle = None
            expected: dict[str, dict] = {}

            def run_op(op_id):
                nonlocal handle
                kind, payload = all_ops[op_id]
                if kind == "q":
                    response = oracle.query(request_from_payload(payload["request"]))
                    expected[op_id] = query_response_to_payload(response)
                else:
                    if handle is None:
                        handle = oracle.monitor(())
                    response = handle.tick(tick_from_payload(payload["updates"]))
                    invalidated = oracle.invalidate_result_caches()
                    expected[op_id] = {
                        "invalidated_services": invalidated,
                        **tick_response_to_payload(response),
                    }

            for op_id in epoch0_ids:
                run_op(op_id)
            # the restart boundary: the crashed process's memo died with it,
            # and the journaled job re-executes here — after every epoch-0
            # tick, before any epoch-1 operation
            oracle.invalidate_result_caches()
            oracle_batch = oracle.run_batch(
                [request_from_payload(r) for r in batch_requests],
                policy=ExecutionPolicy(**batch_policy),
            )
            for op_id in epoch1_ids:
                run_op(op_id)
            oracle_facilities = _facility_ids(oracle)

            for op_id in order:
                got = dict(acked[op_id][1])
                got.pop("seq", None)
                assert _strip(got) == _strip(expected[op_id]), (
                    f"acknowledged op {op_id} diverged from the oracle "
                    f"(chaos seed {seed})"
                )
            got_job = dict(job_result)
            got_job.pop("seq", None)
            assert _strip(got_job) == _strip(
                batch_response_to_payload(oracle_batch)
            ), f"the recovered batch job diverged from the oracle (seed {seed})"
        # no tick lost, none double-applied: the facility sets agree
        assert survivors == oracle_facilities, f"tick divergence (seed {seed})"
        # the chaos actually happened: the transport plane fired something
        assert sum(plane.fired.values()) >= 1, plane.snapshot()
