"""The temporal differential oracle: snapshots must be invisible on the wire.

Two families of bit-identity checks pin the temporal subsystem's
correctness:

* **Departure-time oracle** — every answer a profile-registered
  :class:`~repro.api.Session` gives under ``temporal="profiles"`` must be
  *bit-identical* (result payload AND I/O counters) to a fresh static
  session built over ``TimeVaryingMCN.snapshot(departure_time)`` with
  rebound facilities.  The executor's LRU, quantisation and staleness
  machinery must therefore never be observable in an answer.

* **Edge-tick oracle** — after any prefix of an
  :class:`~repro.monitor.EdgeCostUpdate` stream is applied through the
  monitoring service, every subscription's maintained answer and every ad
  hoc query must be bit-identical to a fresh session over the mutated
  graph.  The in-place compiled-graph patching and the maintainers'
  edge-cost refresh path must likewise be invisible.

The CI matrix re-runs this file under ``REPRO_COMPILED=1`` and
``REPRO_VECTOR=0``, so both oracles hold across the compiled/vector
execution modes too.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api import ExecutionPolicy, Session
from repro.datagen import (
    EdgeCostStreamSpec,
    WorkloadSpec,
    make_edge_cost_stream,
    make_profile_network,
    make_workload,
)
from repro.monitor import MonitoringService
from repro.network.facilities import FacilitySet
from repro.serve.payloads import io_to_payload, result_to_payload
from repro.service.requests import SkylineRequest, TopKRequest
from repro.timedep.network import rebind_facilities

SPEC = WorkloadSpec(
    num_nodes=110, num_facilities=30, num_cost_types=2, clustered=True,
    num_queries=4, seed=81,
)
STREAM_SPEC = EdgeCostStreamSpec(
    num_ticks=6, start_time=6.0, time_step=0.5, affected_fraction=0.25, seed=82
)
POLICY = ExecutionPolicy(temporal="profiles", profile_source="rush")
DEPARTURE_TIMES = (6.0, 7.0, 7.75, 8.0, 9.5)


def build_requests(workload):
    requests = []
    for index, query in enumerate(workload.queries):
        if index % 2 == 0:
            requests.append(SkylineRequest(query))
        else:
            requests.append(TopKRequest(query, 3, weights=(0.4, 0.6)))
    return requests


def answer_signature(response):
    """The wire-observable answer: result payload plus I/O counters."""
    return (result_to_payload(response.result), io_to_payload(response.io))


class TestDepartureTimeOracle:
    def test_temporal_answers_match_fresh_snapshot_sessions(self):
        workload = make_workload(SPEC)
        network = make_profile_network(workload.graph, STREAM_SPEC)
        requests = build_requests(workload)
        with Session(
            workload.graph, workload.facilities, profiles={"rush": network}
        ) as session:
            facilities = session.facilities
            for departure_time in DEPARTURE_TIMES:
                snapshot = network.snapshot(departure_time)
                rebound = rebind_facilities(snapshot, facilities)
                with Session(snapshot, rebound) as oracle:
                    for request in requests:
                        timed = replace(request, departure_time=departure_time)
                        lived = session.query(timed, policy=POLICY)
                        fresh = oracle.query(request)
                        assert answer_signature(lived) == answer_signature(fresh)
                        # The response re-carries the original timed request.
                        assert lived.request is timed

    def test_batch_answers_match_fresh_snapshot_batches(self):
        """A same-departure-time batch shares exactly one snapshot stack, so
        its intra-batch cache behaviour — and therefore its I/O — must match
        a fresh static session running the stripped batch."""
        workload = make_workload(SPEC)
        network = make_profile_network(workload.graph, STREAM_SPEC)
        requests = [
            replace(request, departure_time=8.0)
            for request in build_requests(workload)
        ]
        with Session(
            workload.graph, workload.facilities, profiles={"rush": network}
        ) as session:
            lived = session.run_batch(requests, policy=POLICY)
            snapshot = network.snapshot(8.0)
            rebound = rebind_facilities(snapshot, session.facilities)
            with Session(snapshot, rebound) as oracle:
                fresh = oracle.run_batch(
                    [replace(request, departure_time=None) for request in requests]
                )
        assert [answer_signature(r) for r in lived.responses] == [
            answer_signature(r) for r in fresh.responses
        ]
        assert io_to_payload(lived.io) == io_to_payload(fresh.io)

    def test_quantisation_serves_the_bucket_snapshot(self):
        """An off-grid departure time answers from its *quantised* instant —
        pinned against the snapshot at the bucket time, not the raw time."""
        workload = make_workload(SPEC)
        network = make_profile_network(workload.graph, STREAM_SPEC)
        request = build_requests(workload)[0]
        policy = replace(POLICY, temporal_quantum=0.5)
        with Session(
            workload.graph, workload.facilities, profiles={"rush": network}
        ) as session:
            lived = session.query(
                replace(request, departure_time=7.9), policy=policy
            )
            snapshot = network.snapshot(8.0)
            rebound = rebind_facilities(snapshot, session.facilities)
            with Session(snapshot, rebound) as oracle:
                fresh = oracle.query(request)
        assert answer_signature(lived) == answer_signature(fresh)


class TestEdgeTickOracle:
    @pytest.mark.parametrize("algorithm", ["cea", "lsa"])
    def test_post_tick_queries_match_fresh_sessions(self, algorithm):
        workload = make_workload(SPEC)
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        service = MonitoringService(workload.graph, facilities)
        requests = [
            replace(request, algorithm=algorithm)
            for request in build_requests(workload)
        ]
        subscription_ids = [service.subscribe(request) for request in requests]
        stream = make_edge_cost_stream(workload.graph, STREAM_SPEC)
        # The long-lived session's compiled graph is patched *in place* by
        # ensure_fresh as ticks land; the oracle sessions are rebuilt from
        # the mutated graph each tick.  Their answers may never drift apart.
        with Session(workload.graph, facilities) as lived:
            for tick in stream.ticks:
                service.apply_tick(tick)
                lived.invalidate_result_caches()
                # Maintained subscription answers equal a fresh service's
                # answers over the mutated graph (membership and values)...
                fresh_service = MonitoringService(workload.graph, facilities)
                for sid, request in zip(subscription_ids, requests):
                    fresh_sid = fresh_service.subscribe(request)
                    assert service.result_signature(
                        sid
                    ) == fresh_service.result_signature(fresh_sid)
                fresh_service.close()
                # ...and the patched long-lived session answers bit-identically
                # (result AND I/O) to a session built from scratch.
                with Session(workload.graph, facilities) as oracle:
                    for request in requests:
                        assert answer_signature(
                            lived.query(request)
                        ) == answer_signature(oracle.query(request))

    def test_edge_ticks_mark_every_subscription_refreshed(self):
        workload = make_workload(SPEC)
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        service = MonitoringService(workload.graph, facilities)
        for request in build_requests(workload):
            service.subscribe(request)
        stream = make_edge_cost_stream(workload.graph, STREAM_SPEC)
        non_empty = [tick for tick in stream.ticks if len(tick)]
        assert non_empty, "the stream spec must produce at least one busy tick"
        report = service.apply_tick(non_empty[0])
        # One refresh notification per (edge update, subscription) pair, and
        # exactly one deferred recomputation per subscription at tick end.
        assert report.counters.edge_cost_refreshes == len(non_empty[0]) * len(
            service.subscription_ids
        )
        assert report.counters.recomputations == len(service.subscription_ids)
