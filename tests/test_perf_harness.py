"""The perf-baseline harness (``bench perf``) and the driver's fast-path runs."""

from __future__ import annotations

import json

from repro.bench.driver import ReplaySpec, format_replay_report, replay_workload
import copy

import pytest

from repro.bench.perf import (
    HEADLINE_CASE,
    PERF_SCHEMA,
    compare_perf_reports,
    format_perf_comparison,
    format_perf_report,
    load_perf_baseline,
    run_perf_suite,
    write_perf_report,
)
from repro.errors import QueryError
from repro.cli import main
from repro.datagen import WorkloadSpec


class TestPerfSuite:
    def test_smoke_suite_verifies_and_serialises(self, tmp_path):
        report = run_perf_suite(smoke=True, repeats=1)
        # The harness is itself a differential check: every case must agree
        # between the accessor path and the kernel on results and I/O.
        assert report.all_identical
        assert report.all_io_identical
        assert report.headline.name == HEADLINE_CASE
        names = [case.name for case in report.cases]
        assert names == [
            "replay_lsa_deep",
            "replay_lsa_memory",
            "replay_cea_memory",
            "replay_cea_disk",
            "batched_service",
            "sharded_service",
            "monitor_tick",
        ]
        for case in report.cases:
            assert case.legacy.samples_ms and case.fast.samples_ms
            assert case.speedup_median > 0
            assert case.legacy.heap_pops == case.fast.heap_pops
            assert case.legacy.logical_requests == case.fast.logical_requests
            assert case.legacy.page_reads == case.fast.page_reads
        path = tmp_path / "bench.json"
        write_perf_report(report, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == PERF_SCHEMA
        assert payload["smoke"] is True
        assert payload["headline"]["case"] == HEADLINE_CASE
        assert payload["all_identical_results"] is True
        assert payload["all_io_identical"] is True
        assert payload["fast_kernel"] in ("VectorExpansionKernel", "ExpansionKernel")
        assert len(payload["cases"]) == 7
        text = format_perf_report(report)
        assert HEADLINE_CASE in text
        assert "I/O accounting identical" in text

    def test_cli_bench_perf_smoke(self, tmp_path, capsys):
        output = tmp_path / "BENCH_smoke.json"
        exit_code = main(["bench", "perf", "--smoke", "--output", str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "headline" in captured
        assert json.loads(output.read_text())["schema"] == PERF_SCHEMA

    def test_cli_bench_perf_can_skip_writing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        exit_code = main(["bench", "perf", "--smoke", "--repeats", "1", "--output", "-"])
        assert exit_code == 0
        assert not (tmp_path / "BENCH_4.json").exists()


def make_payload(
    cases: dict[str, tuple[float, float]], *, smoke: bool = True
) -> dict:
    """A minimal suite payload: name -> (speedup_median, fast median_ms)."""
    return {
        "schema": PERF_SCHEMA,
        "smoke": smoke,
        "cases": [
            {
                "name": name,
                "speedup_median": speedup,
                "fast": {"median_ms": median},
            }
            for name, (speedup, median) in cases.items()
        ],
    }


class TestPerfComparison:
    def test_no_regression_within_tolerance(self):
        baseline = make_payload({"a": (2.0, 10.0), "b": (1.2, 5.0)})
        current = make_payload({"a": (1.85, 10.8), "b": (1.3, 4.0)})
        assert compare_perf_reports(current, baseline) == []

    def test_speedup_erosion_beyond_tolerance_fails(self):
        baseline = make_payload({"a": (2.0, 10.0)})
        current = make_payload({"a": (1.7, 10.0)})
        regressions = compare_perf_reports(current, baseline)
        assert [r.metric for r in regressions] == ["speedup_median"]
        assert regressions[0].case == "a"
        assert regressions[0].change == pytest.approx(-0.15)
        text = format_perf_comparison(regressions, baseline_label="BENCH_X.json")
        assert "1 regression" in text and "speedup_median" in text

    def test_median_latency_growth_fails_at_equal_scale_only(self):
        baseline = make_payload({"a": (2.0, 10.0)})
        slower = make_payload({"a": (2.0, 11.5)})
        regressions = compare_perf_reports(slower, baseline)
        assert [r.metric for r in regressions] == ["fast median_ms"]
        # Different scales: absolute latencies are incomparable, speedup
        # (the scale-free ratio) is still policed.
        full_baseline = make_payload({"a": (2.0, 400.0)}, smoke=False)
        assert compare_perf_reports(slower, full_baseline) == []
        eroded = make_payload({"a": (1.5, 11.5)})
        assert [
            r.metric for r in compare_perf_reports(eroded, full_baseline)
        ] == ["speedup_median"]

    def test_unmatched_cases_are_skipped(self):
        baseline = make_payload({"old_case": (3.0, 1.0)})
        current = make_payload({"new_case": (1.0, 50.0)})
        assert compare_perf_reports(current, baseline) == []

    def test_bad_tolerance_and_bad_baseline_raise(self, tmp_path):
        payload = make_payload({"a": (1.0, 1.0)})
        with pytest.raises(QueryError):
            compare_perf_reports(payload, payload, tolerance=0.0)
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(QueryError):
            load_perf_baseline(str(bogus))

    def test_cli_against_passes_then_fails_on_doctored_baseline(self, tmp_path, capsys):
        output = tmp_path / "BENCH_now.json"
        baseline_path = tmp_path / "BENCH_base.json"
        assert main(["bench", "perf", "--smoke", "--output", str(output)]) == 0
        # A self-comparison (identical payload modulo timing jitter) must
        # pass: speedups get a 10% band and CI reuses the same scale.
        payload = json.loads(output.read_text())
        baseline_path.write_text(json.dumps(payload))
        relaxed = copy.deepcopy(payload)
        for case in relaxed["cases"]:
            case["speedup_median"] = round(case["speedup_median"] * 0.5, 3)
            case["fast"]["median_ms"] = round(case["fast"]["median_ms"] * 10, 4)
        baseline_path.write_text(json.dumps(relaxed))
        exit_code = main(
            ["bench", "perf", "--smoke", "--output", "-", "--against", str(baseline_path)]
        )
        assert exit_code == 0
        assert "no regressions" in capsys.readouterr().out
        # Doctor the baseline to claim far better numbers than reality —
        # the compare mode must now fail the run.
        doctored = copy.deepcopy(payload)
        for case in doctored["cases"]:
            case["speedup_median"] = round(case["speedup_median"] * 100, 3)
        baseline_path.write_text(json.dumps(doctored))
        exit_code = main(
            ["bench", "perf", "--smoke", "--output", "-", "--against", str(baseline_path)]
        )
        assert exit_code == 1
        assert "regression(s)" in capsys.readouterr().out
        # A tolerance wide enough to absorb the doctoring passes again —
        # the CI smoke gate leans on this to ride out smoke-scale jitter.
        exit_code = main(
            [
                "bench", "perf", "--smoke", "--output", "-",
                "--against", str(baseline_path), "--tolerance", "0.999",
            ]
        )
        assert exit_code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_cli_against_missing_baseline_is_a_usage_error(self, tmp_path, capsys):
        exit_code = main(
            [
                "bench", "perf", "--smoke", "--output", "-",
                "--against", str(tmp_path / "absent.json"),
            ]
        )
        assert exit_code == 2
        assert "bench perf:" in capsys.readouterr().err


class TestDriverFastPath:
    def test_replay_reports_fast_runs_side_by_side(self):
        spec = ReplaySpec(
            workload=WorkloadSpec(
                num_nodes=150, num_facilities=50, num_cost_types=2, num_queries=8, seed=19
            ),
            page_size=1024,
            fast_path=True,
        )
        report = replay_workload(spec)
        assert report.identical_results
        assert report.counters_consistent
        assert report.fast_one_shot is not None and report.fast_batched is not None
        assert report.fast_one_shot.page_reads == report.one_shot.page_reads
        assert report.fast_batched.page_reads == report.batched.page_reads
        assert report.fast_path_speedup is not None and report.fast_path_speedup > 0
        labels = [measurement.label for measurement in report.measurements]
        assert labels == ["one-shot", "batched", "one-shot*", "batched*"]
        text = format_replay_report(report)
        assert "fast path (*)" in text

    def test_cli_serve_batch_fast_path(self, capsys):
        exit_code = main(
            [
                "serve-batch",
                "--nodes", "120",
                "--facilities", "40",
                "--queries", "6",
                "--seed", "3",
                "--page-size", "1024",
                "--fast-path",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "one-shot*" in captured
        assert "fast path (*)" in captured
