"""The perf-baseline harness (``bench perf``) and the driver's fast-path runs."""

from __future__ import annotations

import json

from repro.bench.driver import ReplaySpec, format_replay_report, replay_workload
from repro.bench.perf import (
    HEADLINE_CASE,
    PERF_SCHEMA,
    format_perf_report,
    run_perf_suite,
    write_perf_report,
)
from repro.cli import main
from repro.datagen import WorkloadSpec


class TestPerfSuite:
    def test_smoke_suite_verifies_and_serialises(self, tmp_path):
        report = run_perf_suite(smoke=True, repeats=1)
        # The harness is itself a differential check: every case must agree
        # between the accessor path and the kernel on results and I/O.
        assert report.all_identical
        assert report.all_io_identical
        assert report.headline.name == HEADLINE_CASE
        names = [case.name for case in report.cases]
        assert names == [
            "replay_lsa_memory",
            "replay_cea_memory",
            "replay_cea_disk",
            "batched_service",
            "sharded_service",
            "monitor_tick",
        ]
        for case in report.cases:
            assert case.legacy.samples_ms and case.fast.samples_ms
            assert case.speedup_median > 0
            assert case.legacy.heap_pops == case.fast.heap_pops
            assert case.legacy.logical_requests == case.fast.logical_requests
            assert case.legacy.page_reads == case.fast.page_reads
        path = tmp_path / "bench.json"
        write_perf_report(report, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == PERF_SCHEMA
        assert payload["smoke"] is True
        assert payload["headline"]["case"] == HEADLINE_CASE
        assert payload["all_identical_results"] is True
        assert payload["all_io_identical"] is True
        assert len(payload["cases"]) == 6
        text = format_perf_report(report)
        assert HEADLINE_CASE in text
        assert "I/O accounting identical" in text

    def test_cli_bench_perf_smoke(self, tmp_path, capsys):
        output = tmp_path / "BENCH_smoke.json"
        exit_code = main(["bench", "perf", "--smoke", "--output", str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "headline" in captured
        assert json.loads(output.read_text())["schema"] == PERF_SCHEMA

    def test_cli_bench_perf_can_skip_writing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        exit_code = main(["bench", "perf", "--smoke", "--repeats", "1", "--output", "-"])
        assert exit_code == 0
        assert not (tmp_path / "BENCH_4.json").exists()


class TestDriverFastPath:
    def test_replay_reports_fast_runs_side_by_side(self):
        spec = ReplaySpec(
            workload=WorkloadSpec(
                num_nodes=150, num_facilities=50, num_cost_types=2, num_queries=8, seed=19
            ),
            page_size=1024,
            fast_path=True,
        )
        report = replay_workload(spec)
        assert report.identical_results
        assert report.counters_consistent
        assert report.fast_one_shot is not None and report.fast_batched is not None
        assert report.fast_one_shot.page_reads == report.one_shot.page_reads
        assert report.fast_batched.page_reads == report.batched.page_reads
        assert report.fast_path_speedup is not None and report.fast_path_speedup > 0
        labels = [measurement.label for measurement in report.measurements]
        assert labels == ["one-shot", "batched", "one-shot*", "batched*"]
        text = format_replay_report(report)
        assert "fast path (*)" in text

    def test_cli_serve_batch_fast_path(self, capsys):
        exit_code = main(
            [
                "serve-batch",
                "--nodes", "120",
                "--facilities", "40",
                "--queries", "6",
                "--seed", "3",
                "--page-size", "1024",
                "--fast-path",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "one-shot*" in captured
        assert "fast path (*)" in captured
