"""ExecutionPolicy: validation, env handling and payload codecs."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    COMPILED_ENV_VAR,
    DEFAULT_POLICY,
    ExecutionPolicy,
    compiled_env_default,
    policy_from_payload,
    policy_to_payload,
    resolve_compiled,
)
from repro.core.engine import compiled_default_enabled
from repro.errors import PolicyError, QueryError
from repro.parallel import EXECUTORS, ROUTINGS, ParallelExecution


class TestDefaults:
    def test_default_policy_fields(self):
        policy = ExecutionPolicy()
        assert policy.algorithm == "cea"
        assert policy.residency == "memory"
        assert policy.compiled == "auto"
        assert policy.page_size == 4096
        assert policy.workers == 1
        assert policy.routing == "round_robin"
        assert policy.executor == "process"
        assert policy.memoize_results is True
        assert policy.harvest_settled is True
        assert policy.max_cached_entries is None
        assert policy.shard_fallback_threshold == 4

    def test_module_default_is_the_all_defaults_policy(self):
        assert DEFAULT_POLICY == ExecutionPolicy()

    def test_policy_is_frozen_and_hashable(self):
        policy = ExecutionPolicy()
        with pytest.raises(Exception):
            policy.workers = 2  # type: ignore[misc]
        assert hash(policy) == hash(ExecutionPolicy())

    def test_replace_returns_validated_copy(self):
        policy = ExecutionPolicy().replace(workers=3, residency="disk")
        assert (policy.workers, policy.residency) == (3, "disk")
        with pytest.raises(PolicyError):
            ExecutionPolicy().replace(workers=0)


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("algorithm", "dijkstra"),
            ("residency", "ram"),
            ("compiled", "yes"),
            ("page_size", 64),
            ("page_size", "big"),
            ("buffer_fraction", 0.0),
            ("buffer_fraction", 1.5),
            ("buffer_fraction", "0.5"),
            ("buffer_fraction", True),
            ("workers", 0),
            ("workers", 1.5),
            ("routing", "nearest"),
            ("executor", "fiber"),
            ("memoize_results", "yes"),
            ("harvest_settled", 1),
            ("max_cached_entries", 0),
            ("max_cached_entries", True),
            ("shard_fallback_threshold", 0),
        ],
    )
    def test_bad_field_rejected_at_construction(self, field, value):
        with pytest.raises(PolicyError):
            ExecutionPolicy(**{field: value})

    def test_policy_error_is_a_query_error(self):
        # Pre-policy call sites catch QueryError around service construction.
        with pytest.raises(QueryError):
            ExecutionPolicy(workers=-1)

    def test_messages_are_actionable(self):
        with pytest.raises(PolicyError, match="expected one of"):
            ExecutionPolicy(routing="nearest")
        with pytest.raises(PolicyError, match=COMPILED_ENV_VAR):
            ExecutionPolicy(compiled="enabled")
        with pytest.raises(PolicyError, match="sequential"):
            ExecutionPolicy(workers=0)

    def test_vocabulary_shared_with_parallel_package(self):
        # The policy module is the canonical source of the routing/executor
        # vocabulary; repro.parallel re-exports the same tuples.
        for routing in ROUTINGS:
            for executor in EXECUTORS:
                policy = ExecutionPolicy(workers=2, routing=routing, executor=executor)
                spec = policy.parallel
                assert isinstance(spec, ParallelExecution)
                assert (spec.workers, spec.routing, spec.executor) == (
                    2,
                    routing,
                    executor,
                )

    def test_parallel_is_none_for_sequential_policies(self):
        assert ExecutionPolicy().parallel is None

    def test_buffer_fraction_canonicalised_to_float(self):
        policy = ExecutionPolicy(buffer_fraction=1)
        assert policy.buffer_fraction == 1.0
        assert isinstance(policy.buffer_fraction, float)
        assert policy == ExecutionPolicy(buffer_fraction=1.0)


class TestCompiledEnvHandling:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(COMPILED_ENV_VAR, value)
        assert compiled_env_default() is True
        assert resolve_compiled("auto") is True

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "banana"])
    def test_other_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(COMPILED_ENV_VAR, value)
        assert compiled_env_default() is False
        assert resolve_compiled("auto") is False

    def test_explicit_modes_ignore_the_environment(self, monkeypatch):
        monkeypatch.setenv(COMPILED_ENV_VAR, "1")
        assert resolve_compiled("off") is False
        monkeypatch.setenv(COMPILED_ENV_VAR, "0")
        assert resolve_compiled("on") is True

    def test_engine_alias_routes_through_the_policy_module(self, monkeypatch):
        # core.engine's compiled_default_enabled is a thin alias of the
        # single source of truth in repro.api.policy.
        monkeypatch.setenv(COMPILED_ENV_VAR, "1")
        assert compiled_default_enabled() is True
        monkeypatch.delenv(COMPILED_ENV_VAR)
        assert compiled_default_enabled() is False

    def test_resolve_compiled_rejects_unknown_mode(self):
        with pytest.raises(PolicyError):
            resolve_compiled("maybe")

    def test_policy_resolved_compiled(self, monkeypatch):
        monkeypatch.setenv(COMPILED_ENV_VAR, "1")
        assert ExecutionPolicy(compiled="auto").resolved_compiled() is True
        assert ExecutionPolicy(compiled="off").resolved_compiled() is False
        monkeypatch.setenv(COMPILED_ENV_VAR, "0")
        assert ExecutionPolicy(compiled="auto").resolved_compiled() is False
        assert ExecutionPolicy(compiled="on").resolved_compiled() is True


GOLDEN_POLICY = ExecutionPolicy(
    algorithm="lsa",
    residency="disk",
    compiled="on",
    vector="off",
    page_size=1024,
    buffer_fraction=0.05,
    workers=3,
    routing="locality",
    executor="thread",
    memoize_results=False,
    harvest_settled=False,
    max_cached_entries=64,
    shard_fallback_threshold=2,
)

GOLDEN_PAYLOAD = {
    "algorithm": "lsa",
    "residency": "disk",
    "dataset_path": None,
    "compiled": "on",
    "vector": "off",
    "page_size": 1024,
    "buffer_fraction": 0.05,
    "workers": 3,
    "routing": "locality",
    "executor": "thread",
    "memoize_results": False,
    "harvest_settled": False,
    "max_cached_entries": 64,
    "shard_fallback_threshold": 2,
    "temporal": "off",
    "profile_source": None,
    "temporal_quantum": 0.25,
    "temporal_cache_size": 8,
}


class TestPayloadCodecs:
    def test_golden_payload_pinned(self):
        assert policy_to_payload(GOLDEN_POLICY) == GOLDEN_PAYLOAD

    def test_golden_payload_decodes(self):
        assert policy_from_payload(GOLDEN_PAYLOAD) == GOLDEN_POLICY

    def test_round_trip_through_json_text(self):
        text = json.dumps(policy_to_payload(GOLDEN_POLICY))
        assert policy_from_payload(json.loads(text)) == GOLDEN_POLICY

    def test_default_policy_round_trips(self):
        assert policy_from_payload(policy_to_payload(DEFAULT_POLICY)) == DEFAULT_POLICY

    def test_methods_mirror_module_functions(self):
        assert GOLDEN_POLICY.to_payload() == GOLDEN_PAYLOAD
        assert ExecutionPolicy.from_payload(GOLDEN_PAYLOAD) == GOLDEN_POLICY

    def test_missing_fields_take_defaults(self):
        decoded = policy_from_payload({"residency": "disk"})
        assert decoded == ExecutionPolicy(residency="disk")

    def test_unknown_field_rejected(self):
        with pytest.raises(PolicyError, match="worker"):
            policy_from_payload({"worker": 3})

    def test_numeric_fields_coerced(self):
        decoded = policy_from_payload(
            {"page_size": 2048.0, "workers": 2.0, "buffer_fraction": 1, "max_cached_entries": 8.0}
        )
        assert decoded.page_size == 2048
        assert decoded.workers == 2
        assert decoded.buffer_fraction == 1.0
        assert decoded.max_cached_entries == 8

    def test_invalid_decoded_policy_rejected(self):
        with pytest.raises(PolicyError):
            policy_from_payload({"workers": 0})

    @pytest.mark.parametrize(
        "field, value",
        [
            ("page_size", "abc"),
            ("page_size", None),
            ("workers", 2.7),
            ("workers", True),
            ("max_cached_entries", "many"),
            ("buffer_fraction", "half"),
        ],
    )
    def test_malformed_numeric_payloads_raise_policy_error(self, field, value):
        # Decode failures must surface as PolicyError (a QueryError), never
        # as a bare ValueError/TypeError an RPC caller would not catch.
        with pytest.raises(PolicyError, match=field):
            policy_from_payload({field: value})

    def test_encode_rejects_non_policy(self):
        with pytest.raises(PolicyError):
            policy_to_payload({"workers": 2})  # type: ignore[arg-type]

    def test_decode_rejects_non_dict(self):
        with pytest.raises(PolicyError):
            policy_from_payload(["workers", 2])  # type: ignore[arg-type]
