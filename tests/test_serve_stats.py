"""Latency statistics: P² estimator, rolling window, recorder."""

from __future__ import annotations

import random
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.api import (
    DEFAULT_TRACKED_QUANTILES,
    LatencyRecorder,
    P2Quantile,
    RollingLatencyStats,
)
from repro.errors import QueryError


class TestP2Quantile:
    def test_exact_below_five_observations(self):
        estimator = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            estimator.observe(value)
        assert estimator.value == 2.0
        assert estimator.count == 3

    def test_empty_estimator_reports_zero(self):
        assert P2Quantile(0.9).value == 0.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_converges_on_uniform_stream(self, q):
        rng = random.Random(17)
        values = [rng.random() for _ in range(5000)]
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        exact = statistics.quantiles(values, n=10_000)[int(q * 10_000) - 1]
        assert abs(estimator.value - exact) < 0.03

    def test_converges_on_skewed_stream(self):
        # Latency-like: exponential, long right tail.
        rng = random.Random(5)
        estimator = P2Quantile(0.99)
        values = [rng.expovariate(100.0) for _ in range(8000)]
        for value in values:
            estimator.observe(value)
        exact = sorted(values)[int(0.99 * len(values))]
        assert estimator.value == pytest.approx(exact, rel=0.2)

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_quantiles_outside_open_interval(self, q):
        with pytest.raises(QueryError, match="quantile"):
            P2Quantile(q)


class TestP2QuantileProperties:
    """Regression armour for the two historical P² bugs: the exact→estimate
    handoff at five observations and marker-height inversion on all-equal
    (or heavily tied) streams."""

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
        q=st.sampled_from([0.1, 0.25, 0.5, 0.9, 0.99]),
    )
    def test_exact_percentile_on_small_streams(self, values, q):
        # Through five observations the estimator holds the sorted sample,
        # so its value must equal the exact interpolated percentile — for
        # every q, not just the median.
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        ordered = sorted(values)
        rank = q * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        exact = ordered[low] + (rank - low) * (ordered[high] - ordered[low])
        assert estimator.value == pytest.approx(exact)

    @pytest.mark.parametrize("q", DEFAULT_TRACKED_QUANTILES)
    def test_all_equal_stream_is_a_fixed_point(self, q):
        estimator = P2Quantile(q)
        for _ in range(500):
            estimator.observe(7.5)
        assert estimator.value == 7.5
        heights = estimator._heights
        assert heights == sorted(heights)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        q=st.sampled_from([0.5, 0.9, 0.99]),
    )
    def test_markers_stay_monotone_under_ties(self, seed, q):
        # Streams with heavy ties drove the parabolic update past its
        # neighbours before the clamp; the five heights must stay sorted
        # after every observation.
        rng = random.Random(seed)
        estimator = P2Quantile(q)
        for _ in range(200):
            estimator.observe(rng.choice((0.0, 1.0, 1.0, 2.0, 5.0)))
            heights = estimator._heights
            assert heights == sorted(heights)
            assert heights[0] <= estimator.value <= heights[-1]

    def test_exact_to_estimate_handoff_has_no_inversion(self):
        # The historical bug: at exactly five observations, value returned
        # the middle marker — the sample median — so q=0.99 over
        # (1, 2, 3, 95, 96) reported 3.0 and then jumped on the sixth
        # observation.  Pin the exact tail at n=5 and a sane value at n=6.
        estimator = P2Quantile(0.99)
        for value in (1.0, 2.0, 3.0, 95.0, 96.0):
            estimator.observe(value)
        assert estimator.count == 5
        assert estimator.value == pytest.approx(95.96)
        estimator.observe(50.0)
        assert 3.0 <= estimator.value <= 96.0
        assert estimator._heights == sorted(estimator._heights)


class TestRollingLatencyStats:
    def test_window_percentile_is_exact(self):
        stats = RollingLatencyStats(window=100)
        for value in range(1, 101):
            stats.observe(float(value))
        assert stats.percentile(0.5) == pytest.approx(50.5)
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(1.0) == 100.0

    def test_window_evicts_oldest(self):
        stats = RollingLatencyStats(window=10)
        for value in range(1, 101):
            stats.observe(float(value))
        assert stats.window_size == 10
        assert stats.percentile(0.0) == 91.0  # the first 90 left the window
        assert stats.count == 100  # lifetime count keeps the whole history

    def test_mean_and_max_are_lifetime(self):
        stats = RollingLatencyStats(window=4)
        for value in (1.0, 2.0, 3.0, 10.0):
            stats.observe(value)
        assert stats.mean == pytest.approx(4.0)
        assert stats.max == 10.0

    def test_untracked_lifetime_quantile_raises(self):
        stats = RollingLatencyStats()
        stats.observe(1.0)
        assert stats.tracked_quantiles == DEFAULT_TRACKED_QUANTILES
        with pytest.raises(QueryError, match="not tracked"):
            stats.estimate(0.75)
        assert stats.percentile(0.75) == 1.0  # window percentiles accept any q

    def test_summary_shape(self):
        stats = RollingLatencyStats(window=8)
        for value in (0.001, 0.002, 0.004):
            stats.observe(value)
        summary = stats.summary()
        assert sorted(summary) == [
            "count", "max_ms", "mean_ms", "p50_lifetime_ms", "p50_ms",
            "p90_lifetime_ms", "p90_ms", "p99_lifetime_ms", "p99_ms", "window",
        ]
        assert summary["count"] == 3 and summary["window"] == 3
        assert summary["max_ms"] == pytest.approx(4.0)

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "big"])
    def test_invalid_window_rejected(self, bad):
        with pytest.raises(QueryError, match="window"):
            RollingLatencyStats(window=bad)

    def test_negative_observation_rejected(self):
        stats = RollingLatencyStats()
        with pytest.raises(QueryError, match=">= 0"):
            stats.observe(-0.001)

    def test_percentile_outside_unit_interval_rejected(self):
        stats = RollingLatencyStats()
        with pytest.raises(QueryError, match="percentile"):
            stats.percentile(1.2)

    def test_no_tracked_quantiles_rejected(self):
        with pytest.raises(QueryError, match="at least one"):
            RollingLatencyStats(quantiles=())


class TestLatencyRecorder:
    def test_labels_created_on_first_observation(self):
        recorder = LatencyRecorder()
        assert recorder.labels() == ()
        recorder.observe("query", 0.01)
        recorder.observe("batch", 0.02)
        recorder.observe("query", 0.03)
        assert recorder.labels() == ("batch", "query")
        assert recorder.stats_for("query").count == 2

    def test_unknown_label_raises(self):
        recorder = LatencyRecorder()
        with pytest.raises(QueryError, match="no latency observations"):
            recorder.stats_for("nope")

    def test_summary_is_json_ready(self):
        import json

        recorder = LatencyRecorder(window=16)
        recorder.observe("tick", 0.005)
        payload = recorder.summary()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["tick"]["count"] == 1

    def test_recorder_respects_window_configuration(self):
        recorder = LatencyRecorder(window=2)
        for value in (1.0, 2.0, 3.0):
            recorder.observe("q", value)
        stats = recorder.stats_for("q")
        assert stats.window_size == 2
        assert stats.percentile(0.0) == 2.0
