"""Unit tests for pages, the simulated disk and the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.buffer import LRUBufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.pages import Page, PageKind, RecordSizes


class TestRecordSizes:
    def test_adjacency_entry_grows_with_dimensionality(self):
        sizes = RecordSizes()
        assert sizes.adjacency_entry(4) - sizes.adjacency_entry(2) == 2 * sizes.float_bytes

    def test_facility_entry_size(self):
        sizes = RecordSizes()
        assert sizes.facility_entry() == sizes.id_bytes + sizes.float_bytes

    def test_index_entry_size(self):
        sizes = RecordSizes()
        assert sizes.index_entry() == sizes.id_bytes + sizes.pointer_bytes

    def test_headers_are_positive(self):
        sizes = RecordSizes()
        assert sizes.adjacency_header() > 0
        assert sizes.facility_header() > 0


class TestPage:
    def test_add_until_full(self):
        page = Page(0, PageKind.ADJACENCY)
        assert page.add("a", 40, capacity=100)
        assert page.add("b", 40, capacity=100)
        assert not page.add("c", 40, capacity=100)
        assert page.records == ["a", "b"]
        assert page.used_bytes == 80

    def test_record_larger_than_page_rejected(self):
        page = Page(0, PageKind.FACILITY)
        with pytest.raises(StorageError):
            page.add("huge", 200, capacity=100)

    def test_exact_fit_allowed(self):
        page = Page(0, PageKind.FACILITY)
        assert page.add("a", 100, capacity=100)
        assert page.used_bytes == 100


class TestSimulatedDisk:
    def test_allocation_assigns_sequential_ids(self):
        disk = SimulatedDisk(page_size=512)
        first = disk.allocate(PageKind.ADJACENCY)
        second = disk.allocate(PageKind.FACILITY)
        assert (first.page_id, second.page_id) == (0, 1)
        assert disk.num_pages == 2

    def test_read_counts_physical_reads(self):
        disk = SimulatedDisk(page_size=512)
        page = disk.allocate(PageKind.ADJACENCY)
        disk.read(page.page_id)
        disk.read(page.page_id)
        assert disk.statistics.page_reads == 2

    def test_read_unknown_page_rejected(self):
        disk = SimulatedDisk(page_size=512)
        with pytest.raises(StorageError):
            disk.read(7)

    def test_invalid_page_size_rejected(self):
        with pytest.raises(StorageError):
            SimulatedDisk(page_size=0)

    def test_pages_of_kind(self):
        disk = SimulatedDisk(page_size=512)
        disk.allocate(PageKind.ADJACENCY)
        disk.allocate(PageKind.ADJACENCY)
        disk.allocate(PageKind.FACILITY)
        assert disk.pages_of_kind(PageKind.ADJACENCY) == 2
        assert disk.pages_of_kind(PageKind.FACILITY_INDEX) == 0


class TestLRUBufferPool:
    @pytest.fixture
    def disk(self) -> SimulatedDisk:
        disk = SimulatedDisk(page_size=128)
        for _ in range(5):
            disk.allocate(PageKind.ADJACENCY)
        return disk

    def test_hit_after_miss(self, disk):
        pool = LRUBufferPool(disk, capacity=2)
        pool.read(0)
        pool.read(0)
        assert pool.statistics.hits == 1
        assert pool.statistics.misses == 1
        assert disk.statistics.page_reads == 1

    def test_lru_eviction_order(self, disk):
        pool = LRUBufferPool(disk, capacity=2)
        pool.read(0)
        pool.read(1)
        pool.read(0)  # page 0 becomes most recently used
        pool.read(2)  # evicts page 1
        pool.read(0)  # still resident -> hit
        pool.read(1)  # miss again
        assert pool.statistics.hits == 2
        assert pool.statistics.misses == 4

    def test_capacity_zero_disables_caching(self, disk):
        pool = LRUBufferPool(disk, capacity=0)
        pool.read(0)
        pool.read(0)
        assert pool.statistics.hits == 0
        assert pool.statistics.misses == 2
        assert pool.resident_pages == 0

    def test_negative_capacity_rejected(self, disk):
        with pytest.raises(StorageError):
            LRUBufferPool(disk, capacity=-1)

    def test_resident_pages_never_exceed_capacity(self, disk):
        pool = LRUBufferPool(disk, capacity=3)
        for page_id in range(5):
            pool.read(page_id)
        assert pool.resident_pages == 3

    def test_clear_drops_residents_but_keeps_statistics(self, disk):
        pool = LRUBufferPool(disk, capacity=3)
        pool.read(0)
        pool.clear()
        assert pool.resident_pages == 0
        pool.read(0)
        assert pool.statistics.misses == 2

    def test_hit_ratio(self, disk):
        pool = LRUBufferPool(disk, capacity=2)
        assert pool.statistics.hit_ratio == 0.0
        pool.read(0)
        pool.read(0)
        pool.read(0)
        assert pool.statistics.hit_ratio == pytest.approx(2 / 3)

    def test_larger_buffer_never_increases_misses(self, disk):
        pattern = [0, 1, 2, 0, 1, 3, 4, 0, 2, 1, 0]
        misses = []
        for capacity in (1, 2, 3, 5):
            disk.statistics.reset()
            pool = LRUBufferPool(disk, capacity=capacity)
            for page_id in pattern:
                pool.read(page_id)
            misses.append(pool.statistics.misses)
        assert misses == sorted(misses, reverse=True)
