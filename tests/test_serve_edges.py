"""The serving tier's temporal surface: PATCH /v1/edges and departure times.

Covers the new edge-cost route end to end — application and SSE deltas,
the facility/edge route split, idempotent retries, route-aware journal
recovery — plus departure-time queries flowing through ``/v1/query`` and
``/v1/batch`` with a temporal policy payload.
"""

from __future__ import annotations

import asyncio

from repro.api import ExecutionPolicy, Session
from repro.api.policy import policy_to_payload
from repro.datagen import (
    EdgeCostStreamSpec,
    WorkloadSpec,
    make_edge_cost_stream,
    make_profile_network,
    make_workload,
)
from repro.monitor.stream import tick_to_payload
from repro.network.facilities import FacilitySet
from repro.serve import InProcessClient, ServeApp, ServeConfig, collect_events
from repro.serve.journal import JobJournal
from repro.service.requests import SkylineRequest, request_to_payload

_WORKLOAD = make_workload(
    WorkloadSpec(num_nodes=80, num_facilities=20, num_cost_types=2, num_queries=4, seed=41)
)
_STREAM_SPEC = EdgeCostStreamSpec(
    num_ticks=4, start_time=6.0, time_step=0.5, affected_fraction=0.2, seed=42
)
_TEMPORAL_POLICY = policy_to_payload(
    ExecutionPolicy(temporal="profiles", profile_source="rush")
)


def _fresh_session(*, profiles: bool = False) -> Session:
    workload = make_workload(
        WorkloadSpec(
            num_nodes=80, num_facilities=20, num_cost_types=2, num_queries=4, seed=41
        )
    )
    kwargs = {}
    if profiles:
        kwargs["profiles"] = {"rush": make_profile_network(workload.graph, _STREAM_SPEC)}
    return Session(
        workload.graph, FacilitySet(workload.graph, iter(workload.facilities)), **kwargs
    )


def _edge_tick_payloads(session: Session) -> list[list[dict]]:
    stream = make_edge_cost_stream(session.graph, _STREAM_SPEC)
    return [tick_to_payload(tick) for tick in stream.ticks if len(tick)]


def _facility_update() -> dict:
    edge = next(iter(_WORKLOAD.graph.edges()))
    return {"type": "insert", "facility": 9000, "edge": edge.edge_id, "offset": 0.25}


def _run(coro):
    return asyncio.run(coro)


class TestPatchEdges:
    def test_edge_tick_applies_and_reports_counters(self):
        async def scenario():
            session = _fresh_session()
            app = ServeApp(session)
            client = InProcessClient(app)
            async with app:
                subscribe = await client.post(
                    "/v1/subscriptions",
                    {"request": request_to_payload(SkylineRequest(_WORKLOAD.queries[0]))},
                )
                ticks = _edge_tick_payloads(session)
                response = await client.patch("/v1/edges", {"updates": ticks[0]})
                return subscribe, response

        subscribe, response = _run(scenario())
        assert subscribe.status == 201
        assert response.status == 200, response.payload
        assert response.payload["updates"] > 0
        assert response.payload["counters"]["edge_cost_refreshes"] > 0
        assert response.payload["counters"]["recomputations"] == 1
        assert "invalidated_services" in response.payload

    def test_edge_ticks_publish_sse_deltas(self):
        async def scenario():
            session = _fresh_session()
            app = ServeApp(session, config=ServeConfig(request_timeout_seconds=60.0))
            client = InProcessClient(app)
            async with app:
                subscribe = await client.post(
                    "/v1/subscriptions",
                    {"request": request_to_payload(SkylineRequest(_WORKLOAD.queries[0]))},
                )
                sid = subscribe.payload["subscription"]
                stream = await client.stream(sid)
                ticks = _edge_tick_payloads(session)[:2]
                tick_payloads = []
                for updates in ticks:
                    response = await client.patch("/v1/edges", {"updates": updates})
                    assert response.status == 200
                    tick_payloads.append(response.payload)
                events = await collect_events(stream, limit=1 + len(ticks))
                return sid, tick_payloads, events

        sid, tick_payloads, events = _run(scenario())
        assert events[0].event == "init"
        for tick_payload, event in zip(tick_payloads, events[1:]):
            assert event.event == "delta"
            mine = [
                delta
                for delta in tick_payload["deltas"]
                if delta["subscription"] == sid
            ]
            assert event.data == {"tick": tick_payload["index"], **mine[0]}

    def test_route_split_is_enforced(self):
        async def scenario():
            session = _fresh_session()
            app = ServeApp(session)
            client = InProcessClient(app)
            async with app:
                ticks = _edge_tick_payloads(session)
                wrong_route = await client.patch(
                    "/v1/facilities", {"updates": ticks[0]}
                )
                wrong_kind = await client.patch(
                    "/v1/edges", {"updates": [_facility_update()]}
                )
                mixed = await client.patch(
                    "/v1/edges", {"updates": [ticks[0][0], _facility_update()]}
                )
                return wrong_route, wrong_kind, mixed

        wrong_route, wrong_kind, mixed = _run(scenario())
        for response in (wrong_route, wrong_kind, mixed):
            assert response.status == 400
            assert response.payload["error"]["code"] == "invalid-update"
        assert "PATCH /v1/edges" in wrong_route.payload["error"]["message"]
        assert "PATCH /v1/facilities" in wrong_kind.payload["error"]["message"]

    def test_idempotent_retry_replays_the_answer(self):
        async def scenario():
            session = _fresh_session()
            app = ServeApp(session)
            client = InProcessClient(app)
            async with app:
                ticks = _edge_tick_payloads(session)
                headers = {"Idempotency-Key": "edge-tick-1"}
                first = await client.patch(
                    "/v1/edges", {"updates": ticks[0]}, headers=headers
                )
                retry = await client.patch(
                    "/v1/edges", {"updates": ticks[0]}, headers=headers
                )
                conflict = await client.patch(
                    "/v1/edges", {"updates": ticks[1]}, headers=headers
                )
                return first, retry, conflict

        first, retry, conflict = _run(scenario())
        assert first.status == 200
        assert retry.payload == first.payload  # replayed, not re-applied
        assert conflict.status == 409
        assert conflict.payload["error"]["code"] == "conflict"


class TestJournalRecovery:
    def test_recovered_edge_ticks_reapply_and_reseed_the_edges_fingerprint(
        self, tmp_path
    ):
        path = str(tmp_path / "journal.jsonl")

        async def first_process():
            session = _fresh_session()
            journal = JobJournal(
                path, fingerprint=session.dataset_fingerprint(), sync=False
            )
            app = ServeApp(session, journal=journal)
            client = InProcessClient(app)
            async with app:
                ticks = _edge_tick_payloads(session)
                response = await client.patch(
                    "/v1/edges",
                    {"updates": ticks[0]},
                    headers={"Idempotency-Key": "edge-crash"},
                )
                assert response.status == 200
                query = await client.post(
                    "/v1/query",
                    {"request": request_to_payload(SkylineRequest(_WORKLOAD.queries[0]))},
                )
                # Simulated crash: no drain, no clean close record.
                return response.payload, query.payload, ticks[0]

        answer, post_tick_query, updates = _run(first_process())

        async def second_process():
            session = _fresh_session()
            journal = JobJournal(
                path, fingerprint=session.dataset_fingerprint(), sync=False
            )
            app = ServeApp(session, journal=journal)
            client = InProcessClient(app)
            async with app:
                recovery = app.last_recovery
                # A retry of the acknowledged tick replays the original
                # answer against the patch-edges fingerprint...
                retry = await client.patch(
                    "/v1/edges",
                    {"updates": updates},
                    headers={"Idempotency-Key": "edge-crash"},
                )
                # ...while the same key with the same body on the facility
                # route is a *different* logical operation.
                cross = await client.patch(
                    "/v1/facilities",
                    {"updates": updates},
                    headers={"Idempotency-Key": "edge-crash"},
                )
                query = await client.post(
                    "/v1/query",
                    {"request": request_to_payload(SkylineRequest(_WORKLOAD.queries[0]))},
                )
                return recovery, retry, cross, query.payload

        recovery, retry, cross, replay_query = _run(second_process())
        assert recovery["ticks_reapplied"] == 1
        assert retry.status == 200
        assert retry.payload == answer
        assert cross.status == 409
        assert cross.payload["error"]["code"] == "conflict"
        # The re-applied tick reproduces the first process's post-tick state.
        assert replay_query["result"] == post_tick_query["result"]


class TestDepartureTimeOverTheWire:
    def test_query_with_departure_time_and_temporal_policy(self):
        async def scenario():
            session = _fresh_session(profiles=True)
            app = ServeApp(session)
            client = InProcessClient(app)
            async with app:
                request = SkylineRequest(_WORKLOAD.queries[0], departure_time=8.0)
                timed = await client.post(
                    "/v1/query",
                    {
                        "request": request_to_payload(request),
                        "policy": _TEMPORAL_POLICY,
                    },
                )
                static = await client.post(
                    "/v1/query",
                    {
                        "request": request_to_payload(
                            SkylineRequest(_WORKLOAD.queries[0])
                        )
                    },
                )
                missing_policy = await client.post(
                    "/v1/query", {"request": request_to_payload(request)}
                )
                return timed, static, missing_policy

        timed, static, missing_policy = _run(scenario())
        assert timed.status == 200, timed.payload
        assert static.status == 200
        assert missing_policy.status == 400
        assert missing_policy.payload["error"]["code"] == "invalid-policy"

    def test_batch_mixes_timed_and_static_requests(self):
        async def scenario():
            session = _fresh_session(profiles=True)
            app = ServeApp(session)
            client = InProcessClient(app)
            async with app:
                payloads = [
                    request_to_payload(SkylineRequest(_WORKLOAD.queries[0])),
                    request_to_payload(
                        SkylineRequest(_WORKLOAD.queries[0], departure_time=8.0)
                    ),
                ]
                submit = await client.post(
                    "/v1/batch",
                    {"requests": payloads, "policy": _TEMPORAL_POLICY},
                )
                job = submit.payload["job"]
                for _attempt in range(200):
                    poll = await client.get(f"/v1/batch/{job}")
                    if poll.payload["state"] in ("done", "failed"):
                        return poll
                    await asyncio.sleep(0.01)
                return poll

        poll = _run(scenario())
        assert poll.payload["state"] == "done", poll.payload
        responses = poll.payload["result"]["responses"]
        assert len(responses) == 2
        assert [entry["kind"] for entry in responses] == ["skyline", "skyline"]
        assert all(entry["result"]["facilities"] for entry in responses)
