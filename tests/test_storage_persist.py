"""The dataset pack format: round-trip fidelity, FileDisk, corruption.

Three pillars:

* **golden page fidelity** — every page decoded off the ``mmap``-backed
  :class:`FileDisk` equals the page the :class:`SimulatedDisk` holds, slot
  by slot, so the pack is a faithful serialisation of the Figure-2 scheme;
* **differential oracle** — the same queries over :class:`NetworkStorage`
  and :class:`PackedNetworkStorage` produce identical answers AND identical
  I/O counters (page reads, buffer hits, logical requests);
* **corruption** — truncation, bit flips, endianness and version mismatches
  all surface as the typed pack errors, never as struct garbage.
"""

from __future__ import annotations

import pytest

from repro.core.engine import MCNQueryEngine
from repro.datagen import WorkloadSpec, make_workload
from repro.errors import (
    PackChecksumError,
    PackFormatError,
    PackVersionError,
    ReproError,
    StorageError,
)
from repro.storage import NetworkStorage, open_dataset, pack_network_storage
from repro.storage.pages import PageKind
from repro.storage.persist import (
    HEADER_SIZE,
    PACK_MAGIC,
    FileDisk,
    read_pack_header,
)

SPEC = WorkloadSpec(
    num_nodes=140, num_facilities=40, num_cost_types=2, num_queries=4, seed=21
)
PAGE_SIZE = 512
BUFFER_FRACTION = 0.02


@pytest.fixture(scope="module")
def workload():
    return make_workload(SPEC)


@pytest.fixture(scope="module")
def storage(workload):
    return NetworkStorage.build(
        workload.graph,
        workload.facilities,
        page_size=PAGE_SIZE,
        buffer_fraction=BUFFER_FRACTION,
    )


@pytest.fixture(scope="module")
def pack_path(storage, tmp_path_factory):
    path = tmp_path_factory.mktemp("packs") / "workload.mcnpack"
    pack_network_storage(storage, str(path))
    return path


@pytest.fixture(scope="module")
def dataset(pack_path):
    with open_dataset(str(pack_path)) as opened:
        yield opened


class TestPackRoundTrip:
    def test_header_is_valid(self, pack_path, storage):
        header = read_pack_header(str(pack_path))
        assert header["page_size"] == PAGE_SIZE
        assert header["num_pages"] == storage.disk.num_pages
        assert header["file_size"] == header["catalog_offset"] + header["catalog_length"]

    def test_catalog_mirrors_the_source_storage(self, dataset, storage, workload):
        catalog = dataset.catalog
        assert catalog.num_nodes == workload.graph.num_nodes
        assert catalog.num_edges == workload.graph.num_edges
        assert catalog.num_facilities == len(workload.facilities)
        assert catalog.num_cost_types == workload.graph.num_cost_types
        assert catalog.directed == workload.graph.directed
        for kind in PageKind:
            assert catalog.page_kind_counts[kind.value] == storage.disk.pages_of_kind(kind)
        assert catalog.mcn_page_count == storage.mcn_page_count
        assert len(catalog.checksum) == 64  # hex SHA-256

    def test_golden_page_fidelity(self, dataset, storage):
        # Every slot decodes to the exact page the simulated disk holds —
        # kind, record sequence and used-byte accounting included.
        disk = dataset.disk
        assert disk.num_pages == storage.disk.num_pages
        for page_id in range(disk.num_pages):
            want = storage.disk.peek(page_id)
            got = disk.peek(page_id)
            assert got.page_id == want.page_id
            assert got.kind is want.kind
            assert got.used_bytes == want.used_bytes
            assert list(got.records) == list(want.records), f"page {page_id}"

    def test_graph_view_mirrors_the_graph(self, dataset, workload):
        view = dataset.graph_view()
        graph = workload.graph
        assert view.num_nodes == graph.num_nodes
        assert view.num_edges == graph.num_edges
        assert list(view.node_ids()) == sorted(graph.node_ids())
        for edge in graph.edges():
            assert view.has_edge(edge.edge_id)
            packed = view.edge(edge.edge_id)
            assert (packed.u, packed.v, packed.length) == (edge.u, edge.v, edge.length)
            assert packed.costs.values == edge.costs.values
        assert not view.has_edge(10**9)
        assert not view.has_node(10**9)


class TestFileDiskInterface:
    def test_read_is_counted_peek_is_not(self, pack_path):
        with FileDisk(str(pack_path)) as disk:
            disk.peek(0)
            assert disk.statistics.page_reads == 0
            disk.read(0)
            disk.read(1)
            assert disk.statistics.page_reads == 2

    def test_allocate_refused(self, dataset):
        with pytest.raises(StorageError, match="read-only"):
            dataset.disk.allocate(PageKind.ADJACENCY)

    def test_unknown_page_rejected(self, dataset):
        with pytest.raises(StorageError, match="unknown page"):
            dataset.disk.peek(dataset.disk.num_pages)

    def test_pages_of_kind_matches_simulated(self, dataset, storage):
        for kind in PageKind:
            assert dataset.disk.pages_of_kind(kind) == storage.disk.pages_of_kind(kind)

    def test_closed_disk_refuses_reads(self, pack_path):
        disk = FileDisk(str(pack_path))
        disk.close()
        with pytest.raises(StorageError, match="closed"):
            disk.read(0)
        disk.close()  # idempotent

    def test_unknown_section_rejected(self, dataset):
        with pytest.raises(PackFormatError, match="no section"):
            dataset.disk.section_bounds("nope")


class TestDifferentialOracle:
    def test_queries_bit_identical_over_both_disks(self, dataset, storage, workload):
        # The acceptance bar: identical answers and identical I/O counter
        # payloads over the simulated and the file-backed residency, query
        # by query, for skyline and top-k.
        packed = dataset.storage(
            buffer_fraction=BUFFER_FRACTION,
            graph=workload.graph,
            facilities=workload.facilities,
        )
        assert packed.buffer.capacity == storage.buffer.capacity
        sim_engine = MCNQueryEngine(workload.graph, workload.facilities, storage=storage)
        file_engine = MCNQueryEngine(
            workload.graph, workload.facilities, accessor=packed
        )
        for query in workload.queries:
            for algorithm in ("cea", "lsa"):
                want = sim_engine.skyline(query, algorithm=algorithm)
                got = file_engine.skyline(query, algorithm=algorithm)
                assert got.facility_ids() == want.facility_ids()
                assert [f.costs for f in got] == [f.costs for f in want]
                assert got.statistics.io == want.statistics.io
            want_top = sim_engine.top_k(query, 3, weights=(0.5, 0.5))
            got_top = file_engine.top_k(query, 3, weights=(0.5, 0.5))
            assert got_top.facility_ids() == want_top.facility_ids()
            assert got_top.statistics.io == want_top.statistics.io

    def test_page_plans_match_the_simulated_storage(self, dataset, storage, workload):
        packed = dataset.storage(buffer_fraction=BUFFER_FRACTION)
        for node_id in sorted(workload.graph.node_ids())[:20]:
            assert packed.adjacency_page_plan(node_id) == storage.adjacency_page_plan(
                node_id
            )
        for edge in list(workload.graph.edges())[:20]:
            assert packed.facility_page_plan(edge.edge_id) == storage.facility_page_plan(
                edge.edge_id
            )
        for facility in list(workload.facilities)[:10]:
            fid = facility.facility_id
            assert packed.facility_tree_page_plan(fid) == storage.facility_tree_page_plan(fid)

    def test_standalone_views_answer_without_the_graph(self, dataset, workload):
        packed = dataset.storage(buffer_fraction=BUFFER_FRACTION)
        assert packed.facilities.graph is packed.graph
        assert len(packed.facilities) == len(workload.facilities)
        some_node = sorted(workload.graph.node_ids())[0]
        records = packed.adjacency(some_node)
        probe = NetworkStorage.build(
            workload.graph, workload.facilities, page_size=PAGE_SIZE
        )
        assert records == probe.adjacency(some_node)


def _corrupt(path, tmp_path, name, mutate):
    data = bytearray(path.read_bytes())
    mutate(data)
    out = tmp_path / name
    out.write_bytes(bytes(data))
    return str(out)


class TestCorruption:
    """Satellite: every way a pack can rot maps to a typed StorageError."""

    def test_truncated_file(self, pack_path, tmp_path):
        data = pack_path.read_bytes()
        out = tmp_path / "truncated.mcnpack"
        out.write_bytes(data[: len(data) // 2])
        with pytest.raises(PackFormatError, match="truncated"):
            open_dataset(str(out))

    def test_file_shorter_than_header(self, tmp_path):
        out = tmp_path / "stub.mcnpack"
        out.write_bytes(b"MCNPACK1 not nearly enough")
        with pytest.raises(PackFormatError, match="shorter than"):
            open_dataset(str(out))

    def test_flipped_payload_byte_caught_by_checksum(self, pack_path, tmp_path):
        path = _corrupt(
            pack_path,
            tmp_path,
            "flipped.mcnpack",
            lambda data: data.__setitem__(HEADER_SIZE + 5, data[HEADER_SIZE + 5] ^ 0xFF),
        )
        with pytest.raises(PackChecksumError, match="SHA-256 mismatch"):
            open_dataset(path)
        # ...and an explicit opt-out maps the file anyway (trusted source).
        opened = open_dataset(path, verify_checksum=False)
        opened.close()

    def test_wrong_endianness_header(self, pack_path, tmp_path):
        def swap_tag(data):
            data[8:12] = bytes(reversed(data[8:12]))

        path = _corrupt(pack_path, tmp_path, "endian.mcnpack", swap_tag)
        with pytest.raises(PackFormatError, match="endianness"):
            open_dataset(path)

    def test_version_mismatch(self, pack_path, tmp_path):
        def bump_version(data):
            data[12] = 99  # little-endian u32 at offset 12

        path = _corrupt(pack_path, tmp_path, "version.mcnpack", bump_version)
        with pytest.raises(PackVersionError, match="version 99"):
            open_dataset(path)

    def test_bad_magic(self, pack_path, tmp_path):
        path = _corrupt(
            pack_path,
            tmp_path,
            "magic.mcnpack",
            lambda data: data.__setitem__(slice(0, 8), b"NOTAPACK"),
        )
        with pytest.raises(PackFormatError, match="magic"):
            open_dataset(path)

    def test_typed_errors_are_storage_errors(self):
        # Callers catching StorageError (or ReproError) see every variant.
        for error in (PackFormatError, PackVersionError, PackChecksumError):
            assert issubclass(error, StorageError)
            assert issubclass(error, ReproError)
        assert issubclass(PackChecksumError, PackFormatError)

    def test_magic_constant_pinned(self):
        assert PACK_MAGIC == b"MCNPACK1"
