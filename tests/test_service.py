"""Tests for the batch query service and its cross-query expansion cache."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import MCNQueryEngine
from repro.datagen.workload import WorkloadSpec, make_workload
from repro.errors import QueryError
from repro.service import (
    CrossQueryExpansionCache,
    QueryService,
    SkylineRequest,
    TopKRequest,
)

from tests.helpers import random_mcn, random_query

#: Small clustered workload shared by the service tests.
SPEC = WorkloadSpec(
    num_nodes=220,
    num_facilities=90,
    num_cost_types=3,
    clustered=True,
    num_queries=12,
    seed=23,
)


@pytest.fixture(scope="module")
def workload():
    return make_workload(SPEC)


@pytest.fixture()
def disk_engine(workload):
    return MCNQueryEngine(workload.graph, workload.facilities, use_disk=True, page_size=1024)


def mixed_requests(workload, k=3):
    requests = []
    for index, query in enumerate(workload.queries):
        if index % 2 == 0:
            requests.append(SkylineRequest(query))
        else:
            requests.append(TopKRequest(query, k, weights=(0.5, 0.3, 0.2)))
    return requests


def engine_answer(engine, request):
    """The one-shot engine answer to a request, as a comparable signature."""
    if isinstance(request, SkylineRequest):
        result = engine.skyline(
            request.location,
            algorithm=request.algorithm,
            probing=request.probing,
            first_nn_shortcut=request.first_nn_shortcut,
        )
        return frozenset(result.facility_ids())
    result = engine.top_k(
        request.location,
        request.k,
        weights=request.weights,
        aggregate=request.aggregate,
        algorithm=request.algorithm,
    )
    return tuple((item.facility_id, round(item.score, 9)) for item in result)


def outcome_signature(outcome):
    if isinstance(outcome.request, SkylineRequest):
        return frozenset(outcome.result.facility_ids())
    return tuple((item.facility_id, round(item.score, 9)) for item in outcome.result)


class TestRequests:
    def test_topk_requires_positive_k(self, workload):
        with pytest.raises(QueryError):
            TopKRequest(workload.queries[0], k=0)

    def test_topk_rejects_weights_and_aggregate(self, workload):
        from repro.core.aggregates import WeightedSum

        with pytest.raises(QueryError):
            TopKRequest(
                workload.queries[0], k=2, weights=(1.0, 1.0, 1.0),
                aggregate=WeightedSum.uniform(3),
            )

    def test_topk_weights_coerced_to_tuple(self, workload):
        request = TopKRequest(workload.queries[0], k=2, weights=[1.0, 2.0, 3.0])
        assert request.weights == (1.0, 2.0, 3.0)
        assert hash(request)  # frozen + tuple weights -> memoisable

    def test_unknown_algorithm_rejected_at_construction(self, workload):
        with pytest.raises(QueryError):
            SkylineRequest(workload.queries[0], algorithm="typo")
        with pytest.raises(QueryError):
            TopKRequest(workload.queries[0], k=2, algorithm="typo")


class TestCrossQueryCache:
    def test_records_are_fetched_once_across_queries(self, disk_engine, workload):
        cache = CrossQueryExpansionCache(disk_engine.accessor)
        node = next(iter(workload.graph.node_ids()))
        first = cache.adjacency(node)
        second = cache.adjacency(node)
        assert first is second
        stats = cache.cache_statistics
        assert stats.adjacency_misses == 1 and stats.adjacency_hits == 1
        assert stats.hit_rate() == 0.5

    def test_lru_bound_evicts_oldest(self, disk_engine, workload):
        cache = CrossQueryExpansionCache(disk_engine.accessor, max_entries=2)
        nodes = list(workload.graph.node_ids())[:3]
        for node in nodes:
            cache.adjacency(node)
        assert cache.cached_nodes == 2
        assert cache.cache_statistics.evictions == 1
        # The first node was evicted; fetching it again is a miss.
        cache.adjacency(nodes[0])
        assert cache.cache_statistics.adjacency_misses == 4

    def test_invalid_bound_rejected(self, disk_engine):
        with pytest.raises(QueryError):
            CrossQueryExpansionCache(disk_engine.accessor, max_entries=0)

    def test_seed_memoisation(self, disk_engine, workload):
        cache = CrossQueryExpansionCache(disk_engine.accessor)
        query = workload.queries[0]
        seeds = cache.seeds_for(workload.graph, query)
        assert cache.seeds_for(workload.graph, query) is seeds
        stats = cache.cache_statistics
        assert stats.seed_misses == 1 and stats.seed_hits == 1

    def test_settled_costs_merge(self, disk_engine, workload):
        cache = CrossQueryExpansionCache(disk_engine.accessor)
        seeds = cache.seeds_for(workload.graph, workload.queries[0])
        cache.record_settled(seeds, 0, {1: 2.0, 2: 3.0})
        cache.record_settled(seeds, 0, {2: 3.0, 3: 4.0})
        assert cache.settled_costs(seeds, 0) == {1: 2.0, 2: 3.0, 3: 4.0}
        assert cache.known_node_cost(seeds, 0, 3) == 4.0
        assert cache.known_node_cost(seeds, 1, 3) is None
        assert cache.cache_statistics.settled_nodes_recorded == 3

    def test_clear_drops_state(self, disk_engine, workload):
        cache = CrossQueryExpansionCache(disk_engine.accessor)
        cache.adjacency(next(iter(workload.graph.node_ids())))
        cache.seeds_for(workload.graph, workload.queries[0])
        cache.clear()
        assert cache.cached_nodes == 0 and cache.describe()["cached_seeds"] == 0


class TestQueryService:
    def test_batch_results_identical_to_engine(self, disk_engine, workload):
        requests = mixed_requests(workload)
        expected = []
        for request in requests:
            disk_engine.storage.reset_statistics(clear_buffer=True)
            expected.append(engine_answer(disk_engine, request))
        disk_engine.storage.reset_statistics(clear_buffer=True)
        service = QueryService(disk_engine)
        report = service.run_batch(requests)
        assert [outcome_signature(outcome) for outcome in report] == expected

    def test_batch_uses_strictly_fewer_page_reads(self, disk_engine, workload):
        requests = mixed_requests(workload)
        one_shot = 0
        for request in requests:
            disk_engine.storage.reset_statistics(clear_buffer=True)
            engine_answer(disk_engine, request)
            one_shot += disk_engine.storage.statistics.page_reads
        disk_engine.storage.reset_statistics(clear_buffer=True)
        report = QueryService(disk_engine).run_batch(requests)
        assert 0 < report.page_reads < one_shot

    def test_lsa_flavoured_requests_agree_with_engine(self, disk_engine, workload):
        query = workload.queries[0]
        expected = frozenset(disk_engine.skyline(query, algorithm="lsa").facility_ids())
        outcome = QueryService(disk_engine).execute(SkylineRequest(query, algorithm="lsa"))
        assert outcome_signature(outcome) == expected

    def test_baseline_requests_supported(self, disk_engine, workload):
        query = workload.queries[1]
        service = QueryService(disk_engine)
        skyline = service.execute(SkylineRequest(query, algorithm="baseline"))
        assert outcome_signature(skyline) == frozenset(
            disk_engine.skyline(query, algorithm="baseline").facility_ids()
        )
        top = service.execute(TopKRequest(query, 2, weights=(1.0, 1.0, 1.0), algorithm="baseline"))
        assert len(top.result) == 2

    def test_submit_drain_preserves_order_and_tickets(self, disk_engine, workload):
        service = QueryService(disk_engine)
        tickets = [service.submit(SkylineRequest(query)) for query in workload.queries[:4]]
        assert tickets == [0, 1, 2, 3]
        assert service.pending_count == 4
        outcomes = service.drain()
        assert [outcome.ticket for outcome in outcomes] == tickets
        assert service.pending_count == 0
        assert service.drain() == []

    def test_repeat_request_served_from_memo(self, disk_engine, workload):
        service = QueryService(disk_engine)
        request = SkylineRequest(workload.queries[0])
        first = service.execute(request)
        second = service.execute(request)
        assert not first.served_from_memo and second.served_from_memo
        assert second.io.page_reads == 0 and second.io.total_requests == 0
        assert second.result is first.result

    def test_memoisation_can_be_disabled(self, disk_engine, workload):
        service = QueryService(disk_engine, memoize_results=False)
        request = SkylineRequest(workload.queries[0])
        service.execute(request)
        second = service.execute(request)
        assert not second.served_from_memo

    def test_settle_costs_harvested(self, disk_engine, workload):
        service = QueryService(disk_engine)
        query = workload.queries[0]
        service.execute(SkylineRequest(query))
        seeds = service.cache.seeds_for(workload.graph, query)
        assert any(
            service.cache.settled_costs(seeds, index)
            for index in range(workload.graph.num_cost_types)
        )

    def test_foreign_cache_rejected(self, disk_engine, workload):
        other = MCNQueryEngine(workload.graph, workload.facilities)
        cache = CrossQueryExpansionCache(other.accessor)
        with pytest.raises(QueryError):
            QueryService(disk_engine, cache=cache)

    def test_non_request_rejected(self, disk_engine, workload):
        with pytest.raises(QueryError):
            QueryService(disk_engine).submit(workload.queries[0])

    def test_bad_aggregate_rejected_at_submission(self, disk_engine, workload):
        service = QueryService(disk_engine)
        # Wrong arity for a 3-cost network: caught at submit, not mid-drain.
        with pytest.raises(QueryError):
            service.submit(TopKRequest(workload.queries[0], k=2, weights=(0.5,)))
        with pytest.raises(QueryError):
            service.submit(
                TopKRequest(workload.queries[0], k=2, aggregate=lambda costs: -sum(costs))
            )
        assert service.pending_count == 0

    def test_harvesting_can_be_disabled(self, disk_engine, workload):
        service = QueryService(disk_engine, harvest_settled=False)
        query = workload.queries[0]
        service.execute(SkylineRequest(query))
        seeds = service.cache.seeds_for(workload.graph, query)
        assert all(
            not service.cache.settled_costs(seeds, index)
            for index in range(workload.graph.num_cost_types)
        )

    def test_unknown_location_rejected_at_submission(self, disk_engine):
        from repro.errors import LocationError
        from repro.network.location import NetworkLocation

        service = QueryService(disk_engine)
        with pytest.raises(LocationError):
            service.submit(SkylineRequest(NetworkLocation.at_node(10**9)))
        assert service.pending_count == 0

    def test_cache_and_bound_mutually_exclusive(self, disk_engine):
        cache = CrossQueryExpansionCache(disk_engine.accessor)
        with pytest.raises(QueryError):
            QueryService(disk_engine, cache=cache, max_cached_entries=8)

    def test_batch_report_cache_counters_are_per_batch(self, disk_engine, workload):
        service = QueryService(disk_engine, memoize_results=False)
        requests = mixed_requests(workload)[:4]
        first = service.run_batch(requests)
        second = service.run_batch(requests)
        # A warm second batch sees only its own counters: every record request
        # hits, so its delta shows no misses and a full hit rate.
        assert first.cache.record_misses > 0
        assert second.cache.record_misses == 0
        assert second.cache.hit_rate() == 1.0

    def test_bounded_cache_still_correct(self, disk_engine, workload):
        requests = mixed_requests(workload)
        expected = [engine_answer(disk_engine, request) for request in requests]
        service = QueryService(disk_engine, max_cached_entries=16, memoize_results=False)
        report = service.run_batch(requests)
        assert [outcome_signature(outcome) for outcome in report] == expected


class TestServiceProperty:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_random_mixed_workloads_match_engine(self, seed):
        graph, facilities = random_mcn(
            num_nodes=40,
            num_edges=70,
            num_cost_types=3,
            num_facilities=18,
            seed=seed,
        )
        engine = MCNQueryEngine(graph, facilities)
        rng = random.Random(seed * 101)
        requests = []
        for index in range(10):
            query = random_query(graph, seed * 1000 + index)
            if rng.random() < 0.5:
                algorithm = rng.choice(("cea", "lsa"))
                requests.append(SkylineRequest(query, algorithm=algorithm))
            else:
                weights = tuple(rng.uniform(0.1, 1.0) for _ in range(3))
                requests.append(TopKRequest(query, rng.randint(1, 5), weights=weights))
        expected = [engine_answer(engine, request) for request in requests]
        service = QueryService(engine)
        report = service.run_batch(requests)
        assert [outcome_signature(outcome) for outcome in report] == expected
