"""Session facade: equivalence with the direct stacks, caching, shims."""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MCNQueryEngine, ParallelExecution
from repro.api import (
    COMPILED_ENV_VAR,
    BatchResponse,
    ExecutionPolicy,
    Response,
    Session,
)
from repro.datagen import UpdateStreamSpec, WorkloadSpec, make_update_stream, make_workload
from repro.errors import PolicyError, QueryError
from repro.monitor import MonitoringService, delta_report_to_payload
from repro.network.accessor import InMemoryAccessor
from repro.network.facilities import FacilitySet
from repro.parallel import ShardedQueryService
from repro.service import QueryService, SkylineRequest, TopKRequest

_WORKLOAD = make_workload(
    WorkloadSpec(
        num_nodes=220,
        num_facilities=80,
        num_cost_types=3,
        num_queries=6,
        seed=23,
    )
)


def _requests(k: int = 3):
    weights = (0.5, 0.3, 0.2)
    return [
        SkylineRequest(query)
        if index % 2 == 0
        else TopKRequest(query, k, weights=weights)
        for index, query in enumerate(_WORKLOAD.queries)
    ]


def _signature(item):
    if isinstance(item.request, SkylineRequest):
        return [(member.facility_id, member.costs) for member in item.result]
    return [(member.facility_id, member.score) for member in item.result]


def _direct_report(policy: ExecutionPolicy, requests):
    """The pre-facade path: hand-built engine + direct service construction."""
    engine = MCNQueryEngine(
        _WORKLOAD.graph,
        _WORKLOAD.facilities,
        use_disk=(policy.residency == "disk"),
        page_size=policy.page_size,
        buffer_fraction=policy.buffer_fraction,
        compiled=policy.resolved_compiled(),
    )
    if policy.workers > 1:
        return ShardedQueryService(engine, policy=policy).run_batch(requests)
    return QueryService(engine, policy=policy.replace(workers=1)).run_batch(requests)


class _NoSnapshotAccessor:
    """An in-process accessor without snapshot support (delegates otherwise)."""

    def __init__(self, inner: InMemoryAccessor):
        self._inner = inner

    def __getattr__(self, name: str):
        if name == "snapshot_view":
            raise AttributeError(name)
        return getattr(self._inner, name)


class TestSessionConstruction:
    def test_mismatched_facility_set_rejected(self):
        other = make_workload(WorkloadSpec(num_nodes=120, num_facilities=40, seed=1))
        with pytest.raises(QueryError):
            Session(_WORKLOAD.graph, other.facilities)

    def test_storage_and_accessor_conflict(self):
        accessor = InMemoryAccessor(_WORKLOAD.graph, _WORKLOAD.facilities)
        session = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=ExecutionPolicy(residency="disk")
        )
        storage = session.storage_for()
        with pytest.raises(PolicyError):
            Session(
                _WORKLOAD.graph, _WORKLOAD.facilities, storage=storage, accessor=accessor
            )

    def test_non_policy_rejected(self):
        with pytest.raises(PolicyError):
            Session(_WORKLOAD.graph, _WORKLOAD.facilities, policy={"workers": 2})  # type: ignore[arg-type]

    def test_parallel_over_unsnapshotable_accessor_rejected_at_construction(self):
        accessor = _NoSnapshotAccessor(
            InMemoryAccessor(_WORKLOAD.graph, _WORKLOAD.facilities)
        )
        with pytest.raises(PolicyError, match="snapshot"):
            Session(
                _WORKLOAD.graph,
                _WORKLOAD.facilities,
                accessor=accessor,
                policy=ExecutionPolicy(workers=2),
            )

    def test_parallel_override_over_unsnapshotable_accessor_rejected_before_running(self):
        accessor = _NoSnapshotAccessor(
            InMemoryAccessor(_WORKLOAD.graph, _WORKLOAD.facilities)
        )
        # compiled="off": arbitrary accessors have no columnar compilation.
        plain = ExecutionPolicy(compiled="off")
        session = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, accessor=accessor, policy=plain
        )
        # Sequential execution over the plain accessor is fine...
        assert len(session.run_batch(_requests()[:2])) == 2
        # ...but a parallel override is rejected at policy resolution, not
        # somewhere in the middle of the batch.
        with pytest.raises(PolicyError, match="workers=2"):
            session.run_batch(_requests(), policy=plain.replace(workers=2))

    def test_disk_residency_over_in_memory_accessor_rejected(self):
        accessor = InMemoryAccessor(_WORKLOAD.graph, _WORKLOAD.facilities)
        with pytest.raises(PolicyError, match="residency"):
            Session(
                _WORKLOAD.graph,
                _WORKLOAD.facilities,
                accessor=accessor,
                policy=ExecutionPolicy(residency="disk"),
            )


class TestSessionCaching:
    def test_engine_reused_per_policy(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        assert session.engine_for() is session.engine_for()

    def test_distinct_engines_per_residency(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        memory = session.engine_for()
        disk = session.engine_for(ExecutionPolicy(residency="disk"))
        assert memory is not disk
        assert disk.storage is not None and memory.storage is None

    def test_storage_shared_across_compiled_modes(self):
        session = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=ExecutionPolicy(residency="disk")
        )
        plain = session.engine_for(ExecutionPolicy(residency="disk", compiled="off"))
        fast = session.engine_for(ExecutionPolicy(residency="disk", compiled="on"))
        assert plain is not fast
        assert plain.storage is fast.storage
        assert fast.compiled_graph is not None and plain.compiled_graph is None

    def test_storage_keyed_by_page_knobs(self):
        session = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=ExecutionPolicy(residency="disk")
        )
        default = session.storage_for()
        small = session.storage_for(ExecutionPolicy(residency="disk", page_size=1024))
        assert default is not small
        assert session.storage_for() is default

    def test_memory_policy_has_no_storage(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        assert session.storage_for() is None

    def test_explicit_storage_backs_disk_policies(self):
        builder = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=ExecutionPolicy(residency="disk")
        )
        storage = builder.storage_for()
        session = Session(
            _WORKLOAD.graph,
            _WORKLOAD.facilities,
            storage=storage,
            policy=ExecutionPolicy(residency="disk"),
        )
        assert session.storage_for() is storage
        assert session.engine_for().storage is storage

    def test_auto_compiled_resolves_at_call_time(self, monkeypatch):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        monkeypatch.delenv(COMPILED_ENV_VAR, raising=False)
        plain = session.engine_for()
        assert plain.compiled_graph is None
        monkeypatch.setenv(COMPILED_ENV_VAR, "1")
        fast = session.engine_for()
        assert fast is not plain and fast.compiled_graph is not None


class TestSessionQuery:
    def test_query_matches_engine(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        engine = MCNQueryEngine(_WORKLOAD.graph, _WORKLOAD.facilities)
        for request in _requests():
            response = session.query(request)
            assert isinstance(response, Response)
            if isinstance(request, SkylineRequest):
                expected = engine.skyline(request.location)
            else:
                expected = engine.top_k(request.location, request.k, weights=request.weights)
            assert _signature(response) == _signature(
                type("O", (), {"request": request, "result": expected})()
            )

    def test_response_envelope(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        response = session.skyline(_WORKLOAD.queries[0])
        assert response.kind == "skyline"
        assert len(response) == len(response.result)
        assert list(iter(response)) == list(iter(response.result))
        assert response.policy == session.policy
        topk = session.top_k(_WORKLOAD.queries[0], 2, weights=(0.5, 0.3, 0.2))
        assert topk.kind == "topk" and len(topk) == 2

    def test_policy_algorithm_drives_convenience_builders(self):
        session = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=ExecutionPolicy(algorithm="baseline")
        )
        response = session.skyline(_WORKLOAD.queries[0])
        assert response.request.algorithm == "baseline"
        cea = Session(_WORKLOAD.graph, _WORKLOAD.facilities).skyline(_WORKLOAD.queries[0])
        assert sorted(f for f, _ in _signature(response)) == sorted(
            f for f, _ in _signature(cea)
        )

    def test_memoization_follows_the_policy(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        request = SkylineRequest(_WORKLOAD.queries[0])
        assert session.query(request).served_from_memo is False
        assert session.query(request).served_from_memo is True
        no_memo = ExecutionPolicy(memoize_results=False)
        assert session.query(request, policy=no_memo).served_from_memo is False
        assert session.query(request, policy=no_memo).served_from_memo is False

    def test_invalid_request_raises_before_execution(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        with pytest.raises(QueryError):
            session.top_k(_WORKLOAD.queries[0], 2, weights=(0.5, 0.5))  # arity


class TestSessionBatchEquivalence:
    def test_sequential_disk_batch_is_bit_identical_to_query_service(self):
        policy = ExecutionPolicy(residency="disk", compiled="off", page_size=2048)
        requests = _requests()
        response = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=policy
        ).run_batch(requests)
        report = _direct_report(policy, requests)
        assert [_signature(r) for r in response] == [_signature(o) for o in report.outcomes]
        assert response.io == report.io
        assert response.cache == report.cache
        assert [r.io for r in response] == [o.io for o in report.outcomes]

    def test_sharded_batch_matches_sequential_results(self):
        requests = _requests()
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        sequential = session.run_batch(requests)
        sharded = session.run_batch(
            requests, policy=ExecutionPolicy(workers=3, executor="serial")
        )
        assert [_signature(r) for r in sequential] == [_signature(r) for r in sharded]
        assert sharded.sharded and not sequential.sharded
        assert sum(sharded.shard_sizes) == len(requests)

    def test_shard_io_sums_to_the_merged_counters(self):
        requests = _requests()
        session = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=ExecutionPolicy(residency="disk")
        )
        batch = session.run_batch(
            requests, policy=ExecutionPolicy(residency="disk", workers=2, executor="serial")
        )
        assert len(batch.shard_io) == len(batch.shard_sizes) == 2
        assert batch.io.page_reads == sum(io.page_reads for io in batch.shard_io)
        assert batch.io.total_requests == sum(io.total_requests for io in batch.shard_io)

    def test_batch_response_describe(self):
        session = Session(_WORKLOAD.graph, _WORKLOAD.facilities)
        batch = session.run_batch(_requests()[:2])
        summary = batch.describe()
        assert summary["queries"] == 2
        assert "cache_hit_rate" in summary and "shards" not in summary
        sharded = session.run_batch(
            _requests(), policy=ExecutionPolicy(workers=2, executor="serial")
        )
        assert sharded.describe()["shards"] == list(sharded.shard_sizes)

    @settings(max_examples=10, deadline=None)
    @given(
        residency=st.sampled_from(["memory", "disk"]),
        compiled=st.sampled_from(["on", "off"]),
        workers=st.sampled_from([1, 2, 3]),
        executor=st.sampled_from(["serial", "thread", "process"]),
        routing=st.sampled_from(["round_robin", "locality"]),
        memoize=st.booleans(),
    )
    def test_session_batches_match_direct_paths(
        self, residency, compiled, workers, executor, routing, memoize
    ):
        """Results AND counter totals are identical to the pre-facade paths
        across random policies (disk/memory x compiled on/off x
        serial/thread/fork)."""
        policy = ExecutionPolicy(
            residency=residency,
            compiled=compiled,
            workers=workers,
            executor=executor,
            routing=routing,
            memoize_results=memoize,
            page_size=2048,
        )
        requests = _requests()
        response = Session(
            _WORKLOAD.graph, _WORKLOAD.facilities, policy=policy
        ).run_batch(requests)
        report = _direct_report(policy, requests)
        assert isinstance(response, BatchResponse)
        assert [_signature(r) for r in response] == [
            _signature(o) for o in report.outcomes
        ]
        assert response.io == report.io
        assert response.cache == report.cache


class TestSessionMonitor:
    def _stream(self, subscription_ids):
        return make_update_stream(
            _WORKLOAD.graph,
            _WORKLOAD.facilities,
            UpdateStreamSpec(num_ticks=4, updates_per_tick=4, seed=9),
            subscription_ids=list(subscription_ids),
        )

    def test_handle_matches_direct_monitoring_service(self):
        requests = _requests()[:4]
        session_facilities = FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))
        direct_facilities = FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))
        session = Session(_WORKLOAD.graph, session_facilities)
        handle = session.monitor(requests)
        direct = MonitoringService(
            _WORKLOAD.graph, direct_facilities, policy=ExecutionPolicy()
        )
        direct_sids = [direct.subscribe(request) for request in requests]
        for tick in self._stream(handle.subscription_ids):
            response = handle.tick(tick)
            report = direct.apply_tick(tick)
            assert [delta_report_to_payload(d) for d in response.deltas] == [
                delta_report_to_payload(d) for d in report.deltas
            ]
            for sid, direct_sid in zip(handle.subscription_ids, direct_sids):
                assert handle.result_signature(sid) == direct.result_signature(direct_sid)

    def test_monitor_calls_share_one_service(self):
        session = Session(_WORKLOAD.graph, FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities)))
        first = session.monitor(_requests()[:1])
        second = session.monitor(_requests()[1:2])
        assert first.service is second.service
        assert set(first.subscription_ids).isdisjoint(second.subscription_ids)

    def test_conflicting_monitor_policy_rejected(self):
        session = Session(_WORKLOAD.graph, FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities)))
        session.monitor(_requests()[:1])
        with pytest.raises(PolicyError, match="monitor"):
            session.monitor(
                _requests()[1:2], policy=ExecutionPolicy(shard_fallback_threshold=2)
            )

    def test_unsubscribe_updates_the_handle(self):
        session = Session(_WORKLOAD.graph, FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities)))
        handle = session.monitor(_requests()[:2])
        first, second = handle.subscription_ids
        handle.unsubscribe(first)
        assert handle.subscription_ids == (second,)


class TestDeprecationShims:
    def _engine(self):
        return MCNQueryEngine(_WORKLOAD.graph, _WORKLOAD.facilities)

    def test_query_service_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            service = QueryService(self._engine(), memoize_results=False)
        assert service.memoize_results is False
        assert service.policy.memoize_results is False

    def test_query_service_policy_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = QueryService(
                self._engine(), policy=ExecutionPolicy(memoize_results=False)
            )
        assert service.memoize_results is False

    def test_query_service_policy_and_legacy_conflict(self):
        with pytest.raises(PolicyError):
            QueryService(
                self._engine(),
                memoize_results=False,
                policy=ExecutionPolicy(),
            )

    def test_run_batch_parallel_kwarg_warns(self):
        service = QueryService(self._engine())
        with pytest.warns(DeprecationWarning, match="run_batch"):
            report = service.run_batch(
                _requests()[:2], parallel=ParallelExecution(workers=2, executor="serial")
            )
        assert len(report.outcomes) == 2

    def test_run_batch_parallel_and_policy_conflict(self):
        service = QueryService(self._engine())
        with pytest.raises(PolicyError):
            service.run_batch(
                _requests()[:2],
                parallel=ParallelExecution(workers=2, executor="serial"),
                policy=ExecutionPolicy(workers=2, executor="serial"),
            )

    def test_run_batch_rejects_sequential_caching_override(self):
        # A workers=1 override runs through THIS service's cache, so a
        # conflicting caching knob must refuse rather than be ignored.
        service = QueryService(self._engine())
        with pytest.raises(PolicyError, match="caching"):
            service.run_batch(
                _requests()[:2], policy=ExecutionPolicy(memoize_results=False)
            )
        # The service's own configuration is an acceptable no-op override.
        report = service.run_batch(_requests()[:2], policy=service.policy)
        assert len(report.outcomes) == 2

    def test_run_batch_policy_override_shards(self):
        service = QueryService(self._engine())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = service.run_batch(
                _requests(), policy=ExecutionPolicy(workers=2, executor="serial")
            )
        assert [shard.size for shard in report.shards] == [3, 3]

    def test_sharded_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning, match="ShardedQueryService"):
            sharded = ShardedQueryService(self._engine(), workers=3, executor="serial")
        assert (sharded.workers, sharded.executor) == (3, "serial")

    def test_sharded_policy_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sharded = ShardedQueryService(
                self._engine(), policy=ExecutionPolicy(workers=3, executor="serial")
            )
        assert sharded.policy.workers == 3

    def test_sharded_legacy_defaults_preserved(self):
        with pytest.warns(DeprecationWarning):
            sharded = ShardedQueryService(self._engine(), routing="locality")
        # The pre-policy constructor defaulted to two process workers.
        assert (sharded.workers, sharded.routing, sharded.executor) == (
            2,
            "locality",
            "process",
        )

    def test_monitoring_legacy_kwargs_warn_and_work(self):
        facilities = FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))
        with pytest.warns(DeprecationWarning, match="MonitoringService"):
            service = MonitoringService(
                _WORKLOAD.graph,
                facilities,
                parallel=ParallelExecution(workers=2, executor="serial"),
                shard_fallback_threshold=2,
                compiled=False,
            )
        assert service.policy.workers == 2
        assert service.policy.shard_fallback_threshold == 2
        assert service.policy.compiled == "off"

    def test_monitoring_policy_path_is_silent(self):
        facilities = FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = MonitoringService(
                _WORKLOAD.graph, facilities, policy=ExecutionPolicy(compiled="off")
            )
        assert service.policy.compiled == "off"

    def test_legacy_and_policy_equivalent_behaviour(self):
        requests = _requests()
        with pytest.warns(DeprecationWarning):
            legacy = QueryService(self._engine(), memoize_results=False, harvest_settled=False)
        modern = QueryService(
            self._engine(),
            policy=ExecutionPolicy(memoize_results=False, harvest_settled=False),
        )
        legacy_report = legacy.run_batch(requests)
        modern_report = modern.run_batch(requests)
        assert [_signature(o) for o in legacy_report.outcomes] == [
            _signature(o) for o in modern_report.outcomes
        ]
        assert legacy_report.io == modern_report.io


class TestSessionLifecycle:
    """Deterministic teardown: the contract the serving tier shuts down on."""

    def _session(self):
        return Session(
            _WORKLOAD.graph, FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))
        )

    def test_close_is_idempotent(self):
        session = self._session()
        assert not session.closed
        session.close()
        assert session.closed
        session.close()  # a second close is a no-op, not an error
        assert session.closed

    @pytest.mark.parametrize(
        "verb",
        ["query", "run_batch", "monitor", "skyline", "top_k", "engine_for"],
    )
    def test_every_verb_refuses_after_close(self, verb):
        session = self._session()
        session.close()
        request = _requests()[0]
        calls = {
            "query": lambda: session.query(request),
            "run_batch": lambda: session.run_batch([request]),
            "monitor": lambda: session.monitor([request]),
            "skyline": lambda: session.skyline(_WORKLOAD.queries[0]),
            "top_k": lambda: session.top_k(
                _WORKLOAD.queries[0], 3, weights=(0.5, 0.3, 0.2)
            ),
            "engine_for": lambda: session.engine_for(),
        }
        with pytest.raises(QueryError, match="closed"):
            calls[verb]()

    def test_context_manager_closes_and_rejects_reentry(self):
        with self._session() as session:
            session.query(_requests()[0])
        assert session.closed
        with pytest.raises(QueryError, match="closed"):
            with session:
                pass  # pragma: no cover - __enter__ refuses

    def test_close_tears_down_the_monitoring_service(self):
        session = self._session()
        handle = session.monitor(_requests()[:2])
        service = handle.service
        session.close()
        assert service.closed
        with pytest.raises(QueryError, match="closed"):
            service.subscribe(_requests()[2])

    def test_monitoring_close_preserves_lifetime_statistics(self):
        session = self._session()
        handle = session.monitor(_requests()[:2])
        for tick in make_update_stream(
            _WORKLOAD.graph,
            _WORKLOAD.facilities,
            UpdateStreamSpec(num_ticks=2, updates_per_tick=3, seed=5),
            subscription_ids=list(handle.subscription_ids),
        ):
            handle.tick(tick)
        before = handle.service.statistics
        session.close()
        after = handle.service.statistics
        assert vars(after) == vars(before)

    def test_close_drops_cached_stacks(self):
        session = self._session()
        session.query(_requests()[0])
        assert session.invalidate_result_caches() == 1
        session.close()
        assert session._services == {} and session._engines == {}
        with pytest.raises(QueryError, match="closed"):
            session.invalidate_result_caches()

    def test_invalidate_result_caches_forces_memo_misses(self):
        session = self._session()
        request = _requests()[0]
        first = session.query(request)
        second = session.query(request)
        assert not first.served_from_memo and second.served_from_memo
        assert session.invalidate_result_caches() == 1
        third = session.query(request)
        assert not third.served_from_memo
        assert _signature(third) == _signature(first)

    def test_latency_recorder_tracks_the_verbs(self):
        session = self._session()
        session.query(_requests()[0])
        session.run_batch(_requests()[:2])
        handle = session.monitor(_requests()[:1])
        for tick in make_update_stream(
            _WORKLOAD.graph,
            _WORKLOAD.facilities,
            UpdateStreamSpec(num_ticks=1, updates_per_tick=2, seed=5),
            subscription_ids=list(handle.subscription_ids),
        ):
            handle.tick(tick)
        assert session.latency.labels() == ("batch", "query", "tick")
        # run_batch observes once per batch plus once per member query.
        assert session.latency.stats_for("query").count == 1
        assert session.latency.stats_for("batch").count == 1
        assert session.latency.stats_for("tick").count == 1
        summary = session.latency.summary()
        assert set(summary) == {"batch", "query", "tick"}

    def test_latency_statistics_survive_close(self):
        session = self._session()
        session.query(_requests()[0])
        session.close()
        assert session.latency.stats_for("query").count == 1
