"""Fault injection against the serving tier: the failure paths ARE the tier.

Each scenario drives the app into one failure mode and asserts three
things: the client gets a *structured* error envelope (never a traceback),
the metrics account for it honestly, and — the part that actually matters
— the engine pool keeps serving afterwards.  The ``before_execute`` hook
(a deliberate seam on :class:`~repro.serve.ServeApp`) lets a test hold or
crash the executor mid-request without monkey-patching engine internals.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api import Session
from repro.datagen import WorkloadSpec, make_workload
from repro.network.facilities import FacilitySet
from repro.serve import (
    HttpServer,
    InProcessClient,
    ServeApp,
    ServeConfig,
    StreamEvent,
    collect_events,
    create_asgi_app,
    sse_encode,
)
from repro.serve.streaming import DeltaBroker
from repro.service.requests import SkylineRequest, request_to_payload

_WORKLOAD = make_workload(
    WorkloadSpec(num_nodes=80, num_facilities=20, num_cost_types=2, num_queries=4, seed=31)
)


def _query_payload(index: int = 0):
    return {"request": request_to_payload(SkylineRequest(_WORKLOAD.queries[index]))}


def _insert_payload(facility_id: int = 9000):
    # A deterministic on-edge location for inserts.
    edge = next(iter(_WORKLOAD.graph.edges()))
    return {
        "updates": [
            {
                "type": "insert",
                "facility": facility_id,
                "edge": edge.edge_id,
                "offset": 0.25,
            }
        ]
    }


def _app(**config):
    session = Session(
        _WORKLOAD.graph, FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))
    )
    return ServeApp(session, config=ServeConfig(**config))


def _run(coro):
    return asyncio.run(coro)


def _assert_envelope(response, status, code):
    assert response.status == status, response.payload
    assert sorted(response.payload) == ["error"]
    keys = sorted(response.payload["error"])
    assert keys in (["code", "message"], ["code", "message", "retry_after"])
    assert response.payload["error"]["code"] == code
    assert "Traceback" not in response.payload["error"]["message"]


class TestAdmissionSaturation:
    def test_saturated_requests_rejected_and_recovered(self):
        async def scenario():
            app = _app(max_in_flight=1, request_timeout_seconds=30.0)
            client = InProcessClient(app)
            gate = threading.Event()
            release = threading.Event()

            def hold(label):
                gate.set()
                release.wait(timeout=30)

            app.before_execute = hold
            async with app:
                first = asyncio.create_task(client.post("/v1/query", _query_payload()))
                await asyncio.get_running_loop().run_in_executor(None, gate.wait)
                rejected = await client.post("/v1/query", _query_payload(1))
                _assert_envelope(rejected, 429, "saturated")
                assert app.admission.rejected == 1
                app.before_execute = None
                release.set()
                held = await first
                assert held.status == 200
                # Capacity is back: the pool was never wedged.
                again = await client.post("/v1/query", _query_payload(1))
                assert again.status == 200
                metrics = (await client.get("/v1/metrics")).payload
                assert metrics["admission"]["rejected"] == 1
                assert metrics["admission"]["in_flight"] == 0

        _run(scenario())

    def test_health_and_metrics_bypass_admission(self):
        async def scenario():
            app = _app(max_in_flight=1, request_timeout_seconds=30.0)
            client = InProcessClient(app)
            gate = threading.Event()
            release = threading.Event()

            def hold(label):
                gate.set()
                release.wait(timeout=30)

            app.before_execute = hold
            async with app:
                task = asyncio.create_task(client.post("/v1/query", _query_payload()))
                await asyncio.get_running_loop().run_in_executor(None, gate.wait)
                # The control plane answers even while the engine is saturated.
                assert (await client.get("/v1/health")).status == 200
                assert (await client.get("/v1/metrics")).status == 200
                app.before_execute = None
                release.set()
                assert (await task).status == 200

        _run(scenario())

    def test_batch_job_queue_bounded(self):
        async def scenario():
            app = _app(max_queued_jobs=1, request_timeout_seconds=30.0)
            client = InProcessClient(app)
            release = threading.Event()
            app.before_execute = lambda label: release.wait(timeout=30)
            async with app:
                first = await client.post("/v1/batch", {"requests": [_query_payload()["request"]]})
                assert first.status == 202
                second = await client.post("/v1/batch", {"requests": [_query_payload()["request"]]})
                _assert_envelope(second, 429, "saturated")
                app.before_execute = None
                release.set()
                while True:
                    poll = await client.get(f"/v1/batch/{first.payload['job']}")
                    if poll.payload["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.002)
                assert poll.payload["state"] == "done"

        _run(scenario())


class TestTimeouts:
    def test_timeout_fires_mid_expansion_without_wedging_the_pool(self):
        async def scenario():
            app = _app(max_in_flight=2, request_timeout_seconds=0.05)
            client = InProcessClient(app)
            release = threading.Event()
            calls = []

            def slow_once(label):
                calls.append(label)
                if len(calls) == 1:
                    release.wait(timeout=30)

            app.before_execute = slow_once
            async with app:
                timed_out = await client.post("/v1/query", _query_payload())
                _assert_envelope(timed_out, 504, "timeout")
                # The orphan still holds its slot (honest accounting)...
                assert app.admission.in_flight == 1
                release.set()
                # ...and once it finishes, the very same app keeps serving.
                for _ in range(200):
                    if app.admission.in_flight == 0:
                        break
                    await asyncio.sleep(0.005)
                assert app.admission.in_flight == 0
                ok = await client.post("/v1/query", _query_payload(1))
                assert ok.status == 200
                metrics = (await client.get("/v1/metrics")).payload
                assert metrics["timeouts"] == 1

        _run(scenario())

    def test_timed_out_slot_keeps_saturating_until_the_orphan_finishes(self):
        async def scenario():
            app = _app(max_in_flight=1, request_timeout_seconds=0.05)
            client = InProcessClient(app)
            release = threading.Event()
            calls = []

            def slow_once(label):
                calls.append(label)
                if len(calls) == 1:
                    release.wait(timeout=30)

            app.before_execute = slow_once
            async with app:
                timed_out = await client.post("/v1/query", _query_payload())
                _assert_envelope(timed_out, 504, "timeout")
                rejected = await client.post("/v1/query", _query_payload(1))
                _assert_envelope(rejected, 429, "saturated")
                release.set()
                for _ in range(200):
                    if app.admission.in_flight == 0:
                        break
                    await asyncio.sleep(0.005)
                ok = await client.post("/v1/query", _query_payload(1))
                assert ok.status == 200

        _run(scenario())

    def test_timeouts_disabled_when_configured_off(self):
        async def scenario():
            app = _app(request_timeout_seconds=None)
            client = InProcessClient(app)
            async with app:
                response = await client.post("/v1/query", _query_payload())
                assert response.status == 200

        _run(scenario())


class TestStreamBackpressure:
    def test_slow_consumer_is_lagged_out_and_the_tick_path_never_blocks(self):
        async def scenario():
            app = _app(stream_buffer=2, request_timeout_seconds=30.0)
            client = InProcessClient(app)
            async with app:
                subscribed = await client.post(
                    "/v1/subscriptions", _query_payload()
                )
                sid = subscribed.payload["subscription"]
                stream = await client.stream(sid)
                # Nobody drains the stream; publish more ticks than it buffers.
                statuses = []
                for tick in range(4):
                    response = await client.patch(
                        "/v1/facilities", _insert_payload(9100 + tick)
                    )
                    statuses.append(response.status)
                assert statuses == [200, 200, 200, 200]  # publisher never blocked
                events = await collect_events(stream)
                kinds = [event.event for event in events]
                # The snapshot and one delta fit the buffer of two; the
                # overflow lags the stream out, terminally.
                assert kinds == ["init", "delta", "lagged"]
                assert events[-1].data["subscription"] == sid
                metrics = (await client.get("/v1/metrics")).payload
                assert metrics["streams"]["lagged"] == 1
                assert metrics["streams"]["open"] == 0
                # A fresh stream resyncs: init snapshot + live deltas again.
                fresh = await client.stream(sid)
                await client.patch("/v1/facilities", _insert_payload(9200))
                fresh_events = await collect_events(fresh, limit=2)
                assert [event.event for event in fresh_events] == ["init", "delta"]

        _run(scenario())

    def test_unsubscribe_terminates_streams(self):
        async def scenario():
            app = _app(request_timeout_seconds=30.0)
            client = InProcessClient(app)
            async with app:
                subscribed = await client.post("/v1/subscriptions", _query_payload())
                sid = subscribed.payload["subscription"]
                stream = await client.stream(sid)
                dropped = await client.delete(f"/v1/subscriptions/{sid}")
                assert dropped.payload == {
                    "subscription": sid,
                    "unsubscribed": True,
                    "streams_closed": 1,
                }
                events = await collect_events(stream)
                assert [event.event for event in events] == ["init", "unsubscribed"]

        _run(scenario())

    def test_shutdown_closes_streams_terminally(self):
        async def scenario():
            app = _app(request_timeout_seconds=30.0)
            client = InProcessClient(app)
            async with app:
                subscribed = await client.post("/v1/subscriptions", _query_payload())
                stream = await client.stream(subscribed.payload["subscription"])
            events = await collect_events(stream)
            assert events[-1].event == "closed"

        _run(scenario())

    def test_sse_encoding_is_wire_stable(self):
        event = StreamEvent("delta", {"b": 1, "a": [1.5, None]})
        assert sse_encode(event) == (
            b'event: delta\ndata: {"a":[1.5,null],"b":1}\n\n'
        )


class TestMalformedPayloads:
    @pytest.fixture(scope="class")
    def client_app(self):
        app = _app(max_body_bytes=2048, request_timeout_seconds=30.0)
        yield app, InProcessClient(app)
        if not app.closed:
            asyncio.run(app.aclose())

    @pytest.mark.parametrize(
        "method, path, body, status, code",
        [
            ("POST", "/v1/query", b"{not json", 400, "invalid-request"),
            ("POST", "/v1/query", b"[1, 2]", 400, "invalid-request"),
            ("POST", "/v1/query", b"{}", 400, "invalid-request"),
            (
                "POST", "/v1/query",
                json.dumps({"request": {"kind": "warp"}}).encode(),
                400, "invalid-request",
            ),
            ("POST", "/v1/batch", json.dumps({"requests": []}).encode(), 400, "invalid-request"),
            ("POST", "/v1/batch", json.dumps({"requests": "nope"}).encode(), 400, "invalid-request"),
            ("PATCH", "/v1/facilities", json.dumps({"updates": {}}).encode(), 400, "invalid-update"),
            (
                "PATCH", "/v1/facilities",
                json.dumps({"updates": [{"type": "teleport"}]}).encode(),
                400, "invalid-request",
            ),
            (
                "PATCH", "/v1/facilities",
                json.dumps(
                    {"updates": [{"type": "insert", "facility": 1, "edge": None, "offset": 0.5}]}
                ).encode(),
                400, "invalid-update",
            ),
            ("GET", "/v1/batch/job-999", None, 404, "not-found"),
            ("DELETE", "/v1/subscriptions/777", None, 404, "not-found"),
            ("GET", "/v1/subscriptions/777/stream", None, 404, "not-found"),
            ("DELETE", "/v1/subscriptions/abc", None, 400, "invalid-request"),
            ("GET", "/v1/nothing/here", None, 404, "not-found"),
            ("DELETE", "/v1/query", None, 405, "method-not-allowed"),
            ("POST", "/v1/query", b"x" * 3000, 413, "payload-too-large"),
        ],
    )
    def test_structured_error_envelopes(self, client_app, method, path, body, status, code):
        _app_obj, client = client_app
        response = _run(client.request(method, path, raw_body=body))
        _assert_envelope(response, status, code)

    def test_bad_policy_payload_is_invalid_policy(self, client_app):
        _app_obj, client = client_app
        payload = dict(_query_payload(), policy={"residency": "floppy"})
        response = _run(client.post("/v1/query", payload))
        _assert_envelope(response, 400, "invalid-policy")

    def test_failures_counted_but_app_survives(self, client_app):
        app, client = client_app

        async def scenario():
            before = (await client.get("/v1/metrics")).payload["errors"]
            await client.request("POST", "/v1/query", raw_body=b"{")
            ok = await client.post("/v1/query", _query_payload())
            after = (await client.get("/v1/metrics")).payload["errors"]
            return before, ok.status, after

        before, status, after = _run(scenario())
        assert status == 200 and after == before + 1
        _run(app.aclose())


class TestInternalFailuresAndShutdown:
    def test_engine_crash_is_an_internal_envelope_not_a_traceback(self):
        async def scenario():
            app = _app(request_timeout_seconds=30.0)
            client = InProcessClient(app)

            def boom(label):
                raise RuntimeError("engine exploded")

            app.before_execute = boom
            async with app:
                response = await client.post("/v1/query", _query_payload())
                _assert_envelope(response, 500, "internal")
                assert "engine exploded" in response.payload["error"]["message"]
                app.before_execute = None
                ok = await client.post("/v1/query", _query_payload())
                assert ok.status == 200

        _run(scenario())

    def test_failed_batch_job_reports_the_envelope(self):
        async def scenario():
            app = _app(request_timeout_seconds=30.0)
            client = InProcessClient(app)

            def boom(label):
                if label == "batch":
                    raise RuntimeError("batch exploded")

            app.before_execute = boom
            async with app:
                submitted = await client.post(
                    "/v1/batch", {"requests": [_query_payload()["request"]]}
                )
                while True:
                    poll = await client.get(f"/v1/batch/{submitted.payload['job']}")
                    if poll.payload["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.002)
                assert poll.payload["state"] == "failed"
                assert poll.payload["error"]["code"] == "internal"

        _run(scenario())

    def test_closed_app_answers_503_and_close_is_idempotent(self):
        async def scenario():
            app = _app()
            client = InProcessClient(app)
            async with app:
                assert (await client.get("/v1/health")).status == 200
            await app.aclose()  # second close: no-op
            response = await client.get("/v1/health")
            _assert_envelope(response, 503, "closed")
            assert app.session.closed

        _run(scenario())

    def test_broker_publish_to_unknown_subscription_is_a_noop(self):
        broker = DeltaBroker(4)
        delivered = broker.publish(0, [{"subscription": 42, "kind": "skyline"}])
        assert delivered == 0
        assert broker.snapshot()["ticks_published"] == 1


class TestHttpTransport:
    """The socket listener: same envelopes, plus protocol-level refusals."""

    @staticmethod
    async def _roundtrip(port, method, path, payload=None, raw=None):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        if raw is not None:
            writer.write(raw)
        else:
            body = json.dumps(payload).encode() if payload is not None else b""
            head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            if body:
                head += f"Content-Length: {len(body)}\r\n"
            writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        blob = await reader.read()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        head, _, body = blob.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, json.loads(body) if body[:1] == b"{" else body

    def test_http_roundtrip_matches_in_process(self):
        async def scenario():
            app = _app(request_timeout_seconds=30.0)
            client = InProcessClient(app)
            async with app, HttpServer(app) as server:
                http_status, http_payload = await self._roundtrip(
                    server.port, "POST", "/v1/query", _query_payload()
                )
                direct = await client.post("/v1/query", _query_payload())
                assert http_status == 200 == direct.status
                # Same engine, same session: the answers are identical (the
                # io/ticket/memo fields legitimately differ with order).
                assert http_payload["kind"] == direct.payload["kind"]
                assert http_payload["result"] == direct.payload["result"]
                assert direct.payload["served_from_memo"]  # same memo, later seq
                assert server.connections == 1

        _run(scenario())

    def test_http_malformed_request_line_is_400(self):
        async def scenario():
            app = _app()
            async with app, HttpServer(app) as server:
                status, payload = await self._roundtrip(
                    server.port, "", "", raw=b"GARBAGE\r\n\r\n"
                )
                assert status == 400
                assert payload["error"]["code"] == "invalid-request"

        _run(scenario())

    def test_http_oversized_body_is_413_without_buffering_it(self):
        async def scenario():
            app = _app(max_body_bytes=1024)
            async with app, HttpServer(app) as server:
                body = b"y" * 5000
                raw = (
                    b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                status, payload = await self._roundtrip(server.port, "", "", raw=raw)
                assert status == 413
                assert payload["error"]["code"] == "payload-too-large"

        _run(scenario())

    def test_asgi_adapter_rejects_non_serve_apps(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="ServeApp"):
            create_asgi_app("not an app")

    def test_asgi_lifespan_and_request_cycle(self):
        async def scenario():
            app = _app(request_timeout_seconds=30.0)
            asgi = create_asgi_app(app)
            sent = []

            async def receive_http():
                return {"type": "http.request", "body": b"", "more_body": False}

            async def send(message):
                sent.append(message)

            await asgi(
                {"type": "http", "method": "GET", "path": "/v1/health"},
                receive_http,
                send,
            )
            status = sent[0]["status"]
            body = json.loads(sent[1]["body"])
            # Lifespan shutdown closes the app.
            lifespan_messages = iter(
                [{"type": "lifespan.startup"}, {"type": "lifespan.shutdown"}]
            )

            async def receive_lifespan():
                return next(lifespan_messages)

            await asgi({"type": "lifespan"}, receive_lifespan, send)
            return status, body, app.closed

        status, body, closed = _run(scenario())
        assert status == 200 and body["status"] == "ok" and closed

    def test_http_sse_stream_delivers_init_and_delta(self):
        async def scenario():
            app = _app(request_timeout_seconds=30.0)
            client = InProcessClient(app)
            async with app, HttpServer(app) as server:
                subscribed = await client.post("/v1/subscriptions", _query_payload())
                sid = subscribed.payload["subscription"]
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(
                    f"GET /v1/subscriptions/{sid}/stream HTTP/1.1\r\nHost: t\r\n\r\n".encode()
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b"text/event-stream" in head
                init = await asyncio.wait_for(reader.readuntil(b"\n\n"), 10)
                await client.patch("/v1/facilities", _insert_payload(9300))
                delta = await asyncio.wait_for(reader.readuntil(b"\n\n"), 10)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
                return init, delta

        init, delta = _run(scenario())
        assert init.startswith(b"event: init\n")
        assert delta.startswith(b"event: delta\n")

