"""Shared fixtures: hand-crafted graphs with known answers and generated workloads."""

from __future__ import annotations

import pytest

from repro.core.engine import MCNQueryEngine
from repro.datagen import CostDistribution, WorkloadSpec, make_workload
from repro.network import FacilitySet, MultiCostGraph, NetworkLocation


@pytest.fixture
def tiny_graph() -> MultiCostGraph:
    """A 3x3 grid with two cost types: (minutes, dollars).

    Edges 3-4 and 4-5 model a tolled highway (fast but 1 $); everything else
    is free but slower.  Node ids::

        0 - 1 - 2
        |   |   |
        3 - 4 - 5
        |   |   |
        6 - 7 - 8
    """
    graph = MultiCostGraph(num_cost_types=2)
    for node_id in range(9):
        graph.add_node(node_id, x=(node_id % 3) * 100.0, y=(node_id // 3) * 100.0)
    edges = [
        (0, 1, (4.0, 0.0)),
        (1, 2, (4.0, 0.0)),
        (3, 4, (2.0, 1.0)),
        (4, 5, (2.0, 1.0)),
        (6, 7, (5.0, 0.0)),
        (7, 8, (5.0, 0.0)),
        (0, 3, (3.0, 0.0)),
        (3, 6, (3.0, 0.0)),
        (1, 4, (3.0, 0.0)),
        (4, 7, (3.0, 0.0)),
        (2, 5, (3.0, 0.0)),
        (5, 8, (3.0, 0.0)),
    ]
    for u, v, costs in edges:
        graph.add_edge(u, v, costs)
    return graph


@pytest.fixture
def tiny_facilities(tiny_graph: MultiCostGraph) -> FacilitySet:
    """Three facilities on the tiny grid: one per horizontal corridor."""
    facilities = FacilitySet(tiny_graph)
    facilities.add_on_edge(0, tiny_graph.edge_between(1, 2).edge_id, offset=2.0)
    facilities.add_on_edge(1, tiny_graph.edge_between(4, 5).edge_id, offset=1.0)
    facilities.add_on_edge(2, tiny_graph.edge_between(7, 8).edge_id, offset=2.5)
    return facilities


@pytest.fixture
def tiny_engine(tiny_graph: MultiCostGraph, tiny_facilities: FacilitySet) -> MCNQueryEngine:
    return MCNQueryEngine(tiny_graph, tiny_facilities)


@pytest.fixture
def tiny_query() -> NetworkLocation:
    """The port of the quickstart example: node 3 on the west side."""
    return NetworkLocation.at_node(3)


@pytest.fixture
def line_graph() -> MultiCostGraph:
    """A 5-node path 0-1-2-3-4 with one cost type; edge i has cost i+1."""
    graph = MultiCostGraph(num_cost_types=1)
    for node_id in range(5):
        graph.add_node(node_id, x=float(node_id), y=0.0)
    for node_id in range(4):
        graph.add_edge(node_id, node_id + 1, [float(node_id + 1)])
    return graph


@pytest.fixture(scope="session")
def small_workload():
    """A generated 300-node workload with 3 anti-correlated cost types."""
    return make_workload(
        WorkloadSpec(
            num_nodes=300,
            num_facilities=100,
            num_cost_types=3,
            distribution=CostDistribution.ANTI_CORRELATED,
            num_queries=4,
            seed=17,
        )
    )


@pytest.fixture(scope="session")
def medium_workload():
    """A generated 900-node workload with 4 anti-correlated cost types."""
    return make_workload(
        WorkloadSpec(
            num_nodes=900,
            num_facilities=350,
            num_cost_types=4,
            distribution=CostDistribution.ANTI_CORRELATED,
            num_queries=3,
            seed=29,
        )
    )
