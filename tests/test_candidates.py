"""Unit tests for the candidate pool (CS) and its dominance reasoning."""

from __future__ import annotations

import pytest

from repro.core.candidates import CandidatePool
from repro.errors import QueryError
from repro.network.accessor import FacilityRecord


def record(facility_id: int, edge_id: int = 0) -> FacilityRecord:
    return FacilityRecord(facility_id, edge_id, 0.0)


@pytest.fixture
def pool() -> CandidatePool:
    return CandidatePool(3)


class TestObservation:
    def test_entry_created_on_first_encounter(self, pool):
        entry = pool.observe(7, 0, 5.0, record(7))
        assert entry.costs == [5.0, None, None]
        assert not entry.is_pinned
        assert 7 in pool and len(pool) == 1

    def test_costs_accumulate_until_pinned(self, pool):
        pool.observe(7, 0, 5.0, record(7))
        pool.observe(7, 2, 8.0, record(7))
        entry = pool.observe(7, 1, 6.0, record(7))
        assert entry.is_pinned
        assert entry.known_costs == (5.0, 6.0, 8.0)

    def test_repeated_observation_of_same_cost_keeps_first_value(self, pool):
        pool.observe(7, 0, 5.0, record(7))
        entry = pool.observe(7, 0, 9.0, record(7))
        assert entry.costs[0] == 5.0

    def test_encounter_order_increases(self, pool):
        first = pool.observe(1, 0, 1.0, record(1))
        second = pool.observe(2, 0, 2.0, record(2))
        assert first.encounter_order < second.encounter_order

    def test_pin_order_assigned_when_pinned(self, pool):
        for index in range(3):
            pool.observe(1, index, 1.0, record(1))
        for index in range(3):
            pool.observe(2, index, 2.0, record(2))
        assert pool.entry(1).pin_order < pool.entry(2).pin_order

    def test_unknown_entry_lookup_rejected(self, pool):
        with pytest.raises(QueryError):
            pool.entry(42)

    def test_known_costs_requires_pinned(self, pool):
        entry = pool.observe(1, 0, 1.0, record(1))
        with pytest.raises(QueryError):
            _ = entry.known_costs

    def test_invalid_dimensionality_rejected(self):
        with pytest.raises(QueryError):
            CandidatePool(0)


class TestPoolQueries:
    def test_unresolved_excludes_reported_and_eliminated(self, pool):
        a = pool.observe(1, 0, 1.0, record(1))
        b = pool.observe(2, 0, 2.0, record(2))
        c = pool.observe(3, 0, 3.0, record(3))
        a.reported = True
        b.eliminated = True
        assert pool.unresolved() == [c]
        assert pool.unresolved_count() == 1

    def test_unpinned_tracked_includes_reported_but_unpinned(self, pool):
        reported = pool.observe(1, 0, 1.0, record(1))
        reported.reported = True
        eliminated = pool.observe(2, 0, 2.0, record(2))
        eliminated.eliminated = True
        tracked = pool.unpinned_tracked()
        assert reported in tracked and eliminated not in tracked

    def test_candidate_edges_groups_records(self, pool):
        a = pool.observe(1, 0, 1.0, FacilityRecord(1, 10, 0.5))
        b = pool.observe(2, 0, 2.0, FacilityRecord(2, 10, 1.5))
        c = pool.observe(3, 0, 3.0, FacilityRecord(3, 20, 0.0))
        grouped = pool.candidate_edges([a, b, c])
        assert {record.facility_id for record in grouped[10]} == {1, 2}
        assert {record.facility_id for record in grouped[20]} == {3}

    def test_any_unresolved_missing_cost(self, pool):
        pool.observe(1, 0, 1.0, record(1))
        assert pool.any_unresolved_missing_cost(1)
        assert not pool.any_unresolved_missing_cost(0)


class TestDominance:
    def _pinned(self, pool, facility_id, costs):
        for index, value in enumerate(costs):
            pool.observe(facility_id, index, value, record(facility_id))
        return pool.entry(facility_id)

    def test_provable_domination_with_unknown_costs(self, pool):
        pinned = self._pinned(pool, 1, (1.0, 1.0, 1.0))
        candidate = pool.observe(2, 0, 5.0, record(2))
        assert pool.provably_dominates(pinned, candidate)

    def test_no_domination_when_candidate_better_somewhere(self, pool):
        pinned = self._pinned(pool, 1, (2.0, 2.0, 2.0))
        candidate = pool.observe(2, 0, 1.0, record(2))
        assert not pool.provably_dominates(pinned, candidate)

    def test_equality_on_known_costs_is_not_provable_domination(self, pool):
        pinned = self._pinned(pool, 1, (2.0, 2.0, 2.0))
        candidate = pool.observe(2, 0, 2.0, record(2))
        assert not pool.provably_dominates(pinned, candidate)

    def test_eliminate_dominated_marks_entries(self, pool):
        pinned = self._pinned(pool, 1, (1.0, 1.0, 1.0))
        pool.observe(2, 0, 5.0, record(2))
        pool.observe(3, 0, 0.5, record(3))
        eliminated = pool.eliminate_dominated(pinned)
        assert {entry.facility_id for entry in eliminated} == {2}
        assert pool.entry(2).eliminated and not pool.entry(3).eliminated

    def test_eliminate_dominated_skips_resolved_entries(self, pool):
        pinned = self._pinned(pool, 1, (1.0, 1.0, 1.0))
        already = pool.observe(2, 0, 5.0, record(2))
        already.reported = True
        assert pool.eliminate_dominated(pinned) == []

    def test_dominated_by_reported_uses_exact_vectors(self, pool):
        reported = self._pinned(pool, 1, (1.0, 1.0, 1.0))
        reported.reported = True
        later = self._pinned(pool, 2, (2.0, 2.0, 2.0))
        equal = self._pinned(pool, 3, (1.0, 1.0, 1.0))
        assert pool.dominated_by_reported(later)
        assert not pool.dominated_by_reported(equal)  # exact tie: not dominated

    def test_dominance_check_counter_increases(self, pool):
        pinned = self._pinned(pool, 1, (1.0, 1.0, 1.0))
        pool.observe(2, 0, 5.0, record(2))
        before = pool.dominance_checks
        pool.eliminate_dominated(pinned)
        assert pool.dominance_checks > before


class TestPotentialDominators:
    def _pinned(self, pool, facility_id, costs):
        for index, value in enumerate(costs):
            pool.observe(facility_id, index, value, record(facility_id))
        return pool.entry(facility_id)

    def test_no_potential_dominator_when_frontier_has_passed(self, pool):
        pinned = self._pinned(pool, 1, (2.0, 2.0, 2.0))
        pool.observe(2, 0, 1.0, record(2))  # cheaper on dim 0, dims 1-2 unknown
        # Frontiers already strictly beyond the pinned costs on the unknown dims.
        assert pool.potential_dominators(pinned, [2.0, 3.0, 3.0]) == []

    def test_potential_dominator_with_tied_frontier(self, pool):
        pinned = self._pinned(pool, 1, (2.0, 2.0, 2.0))
        other = pool.observe(2, 0, 1.0, record(2))
        dominators = pool.potential_dominators(pinned, [2.0, 2.0, 2.0])
        assert dominators == [other]

    def test_pinned_entries_are_never_potential_dominators(self, pool):
        pinned = self._pinned(pool, 1, (2.0, 2.0, 2.0))
        self._pinned(pool, 2, (1.0, 2.0, 2.0))
        assert pool.potential_dominators(pinned, [2.0, 2.0, 2.0]) == []

    def test_equal_known_costs_are_not_potential_dominators(self, pool):
        pinned = self._pinned(pool, 1, (2.0, 2.0, 2.0))
        pool.observe(2, 0, 2.0, record(2))
        assert pool.potential_dominators(pinned, [2.0, 2.0, 2.0]) == []
