"""Differential oracle: every execution path must agree on every answer.

The repo now has five ways to answer the same preference query — one-shot
LSA, one-shot CEA, the straightforward baseline, the sequential batch
service and the sharded parallel service — plus an independent brute-force
oracle (plain Dijkstra per cost type, in ``tests/helpers``).  Caching layers
and parallel sharding are exactly the kinds of change that corrupt results
silently, so this suite cross-checks all paths against each other (and the
oracle) on seeded random networks over varied dimensions, aggregates and
buffer sizes.
"""

from __future__ import annotations

import pytest

from repro.core.aggregates import MaxCost, WeightedLpNorm, WeightedSum
from repro.core.engine import MCNQueryEngine
from repro.datagen import (
    CostDistribution,
    UpdateStreamSpec,
    WorkloadSpec,
    make_update_stream,
    make_workload,
)
from repro.monitor import MonitoringService
from repro.network.facilities import FacilitySet
from repro.parallel import ShardedQueryService
from repro.service import QueryService, SkylineRequest, TopKRequest
from repro.storage.scheme import NetworkStorage
from tests.helpers import exact_skyline, exact_top_k, facility_vectors

# Varied dimensions, aggregate families, buffer sizes and facility layouts:
# each configuration exercises a different corner of the shared machinery.
CONFIGS = [
    pytest.param(
        dict(dims=2, buffer=0.0, aggregate="weights", clustered=True, seed=3),
        id="d2-nobuffer-weights",
    ),
    pytest.param(
        dict(dims=3, buffer=0.01, aggregate="lp-norm", clustered=False, seed=17),
        id="d3-buffer1pct-lpnorm",
    ),
    pytest.param(
        dict(dims=4, buffer=0.02, aggregate="max-cost", clustered=True, seed=29),
        id="d4-buffer2pct-maxcost",
    ),
]

K = 4


def make_aggregate(kind: str, dims: int):
    if kind == "weights":
        return WeightedSum(tuple((i + 1.0) / dims for i in range(dims)))
    if kind == "lp-norm":
        return WeightedLpNorm(tuple(1.0 for _ in range(dims)), p=2.0)
    return MaxCost(tuple(0.5 + 0.1 * i for i in range(dims)))


def build_case(config):
    workload = make_workload(
        WorkloadSpec(
            num_nodes=150,
            num_facilities=60,
            num_cost_types=config["dims"],
            distribution=CostDistribution.ANTI_CORRELATED,
            clustered=config["clustered"],
            num_queries=8,
            seed=config["seed"],
        )
    )
    storage = NetworkStorage.build(
        workload.graph,
        workload.facilities,
        page_size=1024,
        buffer_fraction=config["buffer"],
    )
    engine = MCNQueryEngine(workload.graph, workload.facilities, storage=storage)
    aggregate = make_aggregate(config["aggregate"], config["dims"])
    requests = []
    for index, query in enumerate(workload.queries):
        if index % 2 == 0:
            requests.append(SkylineRequest(query))
        else:
            requests.append(TopKRequest(query, k=K, aggregate=aggregate))
    return workload, engine, aggregate, requests


def skyline_ids(result):
    return result.facility_ids()


def topk_signature(result):
    return [(item.facility_id, round(item.score, 6)) for item in result]


@pytest.fixture(scope="module", params=CONFIGS)
def case(request):
    return build_case(request.param)


class TestDifferentialOracle:
    def test_all_paths_agree_on_every_query(self, case):
        workload, engine, aggregate, requests = case

        # Path 1-3: one-shot engine calls, one algorithm at a time.
        one_shot = {"lsa": [], "cea": [], "baseline": []}
        for request in requests:
            for algorithm in one_shot:
                if isinstance(request, SkylineRequest):
                    result = engine.skyline(request.location, algorithm=algorithm)
                else:
                    result = engine.top_k(
                        request.location, request.k, aggregate=request.aggregate, algorithm=algorithm
                    )
                one_shot[algorithm].append(result)

        # Path 4: the sequential batch service (shared cross-query cache).
        batched = QueryService(engine).run_batch(requests)

        # Path 5: the sharded parallel service, both executors and routings.
        sharded_runs = [
            ShardedQueryService(engine, workers=3, routing=routing, executor=executor).run_batch(
                requests
            )
            for routing in ("round_robin", "locality")
            for executor in ("serial", "thread")
        ]

        for position, request in enumerate(requests):
            service_results = [batched.outcomes[position].result] + [
                run.outcomes[position].result for run in sharded_runs
            ]
            vectors = facility_vectors(workload.graph, workload.facilities, request.location)
            if isinstance(request, SkylineRequest):
                oracle = exact_skyline(vectors)
                for path in ("lsa", "cea", "baseline"):
                    assert skyline_ids(one_shot[path][position]) == oracle, path
                for result in service_results:
                    assert skyline_ids(result) == oracle
                # Every cost component any path did compute must match the
                # oracle's independent Dijkstra distances.
                for result in [one_shot[p][position] for p in one_shot] + service_results:
                    for facility in result:
                        for computed, truth in zip(facility.costs, vectors[facility.facility_id]):
                            if computed is not None:
                                assert computed == pytest.approx(truth, abs=1e-6)
            else:
                oracle = exact_top_k(vectors, aggregate, request.k)
                oracle_scores = [round(score, 6) for _fid, score in oracle]
                reference = topk_signature(one_shot["cea"][position])
                assert [score for _fid, score in reference] == oracle_scores
                for path in ("lsa", "baseline"):
                    assert topk_signature(one_shot[path][position]) == reference, path
                for result in service_results:
                    assert topk_signature(result) == reference

    def test_results_independent_of_buffer_size(self, case):
        """The same trace against 0%-buffer storage answers identically."""
        workload, _engine, _aggregate, requests = case
        cold_storage = NetworkStorage.build(
            workload.graph, workload.facilities, page_size=1024, buffer_fraction=0.0
        )
        cold_engine = MCNQueryEngine(workload.graph, workload.facilities, storage=cold_storage)
        report = QueryService(cold_engine).run_batch(requests)
        sharded = ShardedQueryService(cold_engine, workers=2, executor="serial").run_batch(requests)
        for outcome_a, outcome_b in zip(report.outcomes, sharded.outcomes):
            if isinstance(outcome_a.request, SkylineRequest):
                assert skyline_ids(outcome_a.result) == skyline_ids(outcome_b.result)
            else:
                assert topk_signature(outcome_a.result) == topk_signature(outcome_b.result)

    def test_maintenance_matches_recompute_oracle_on_update_stream(self, case):
        """The maintenance differential oracle: drive a random update stream
        through the MonitoringService and assert that after *every* tick,
        every subscription's maintained result equals a fresh brute-force
        Dijkstra recompute over the mutated facility set — across the same
        dims / aggregates / layouts as the one-shot oracle above."""
        workload, _engine, aggregate, requests = case
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        service = MonitoringService(workload.graph, facilities)
        sids = [service.subscribe(request) for request in requests[:4]]
        stream = make_update_stream(
            workload.graph,
            workload.facilities,
            UpdateStreamSpec(num_ticks=10, updates_per_tick=5, seed=61),
            subscription_ids=sids,
        )
        for tick in stream:
            service.apply_tick(tick)
            for sid in sids:
                maintainer = service.maintainer_of(sid)
                vectors = facility_vectors(workload.graph, facilities, maintainer.query)
                if isinstance(service.request_of(sid), SkylineRequest):
                    assert maintainer.skyline_ids() == exact_skyline(vectors)
                    truth_vectors = {
                        fid: pytest.approx(vectors[fid], abs=1e-6)
                        for fid in maintainer.skyline_ids()
                    }
                    assert maintainer.skyline == truth_vectors
                else:
                    oracle = exact_top_k(vectors, aggregate, K)
                    assert [round(s, 6) for _f, s in maintainer.ranking()] == [
                        round(s, 6) for _f, s in oracle
                    ]

    def test_maintenance_oracle_200_update_stream_with_majority_incremental(self):
        """The PR's acceptance criterion: a 200-update random stream, every
        post-tick result identical to brute force, and the counters showing
        the cheap incremental path handled the majority of inserts and
        irrelevant deletes."""
        workload = make_workload(
            WorkloadSpec(
                num_nodes=200,
                num_facilities=80,
                num_cost_types=3,
                clustered=True,
                num_queries=6,
                seed=47,
            )
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        service = MonitoringService(workload.graph, facilities)
        aggregate = WeightedSum((0.5, 0.3, 0.2))
        requests = []
        for index, query in enumerate(workload.queries):
            if index % 2 == 0:
                requests.append(SkylineRequest(query))
            else:
                requests.append(TopKRequest(query, k=4, aggregate=aggregate))
        sids = [service.subscribe(request) for request in requests]
        baseline = service.statistics  # subscribe-time recomputations excluded below
        stream = make_update_stream(
            workload.graph,
            workload.facilities,
            UpdateStreamSpec(num_ticks=40, updates_per_tick=5, seed=48),
            subscription_ids=sids,
        )
        assert stream.num_updates == 200
        for tick in stream:
            service.apply_tick(tick)
            for sid, request in zip(sids, requests):
                maintainer = service.maintainer_of(sid)
                vectors = facility_vectors(workload.graph, facilities, maintainer.query)
                if isinstance(request, SkylineRequest):
                    assert maintainer.skyline_ids() == exact_skyline(vectors)
                else:
                    oracle = exact_top_k(vectors, aggregate, 4)
                    assert [round(s, 6) for _f, s in maintainer.ranking()] == [
                        round(s, 6) for _f, s in oracle
                    ]
        stats = service.statistics.since(baseline)
        counts = stream.counts_by_kind()
        # Every insert and every irrelevant delete must have taken the cheap
        # path; together they dominate the stream, so incremental updates
        # outnumber fallback recomputations by construction *and* by count.
        assert stats.incremental_updates > stats.recomputations
        cheap_per_subscription = stats.incremental_updates / len(sids)
        assert cheap_per_subscription >= counts["insert"] * 0.9

    def test_sharded_matches_sequential_on_mixed_100_query_workload(self):
        """The PR's acceptance criterion: >= 2 workers, 100 mixed queries,
        byte-identical results (same facilities, same order) to the
        sequential service."""
        workload = make_workload(
            WorkloadSpec(
                num_nodes=250,
                num_facilities=100,
                num_cost_types=3,
                clustered=True,
                num_queries=100,
                seed=13,
            )
        )
        storage = NetworkStorage.build(
            workload.graph, workload.facilities, page_size=1024, buffer_fraction=0.01
        )
        engine = MCNQueryEngine(workload.graph, workload.facilities, storage=storage)
        requests = []
        for index, query in enumerate(workload.queries):
            if index % 2 == 0:
                requests.append(SkylineRequest(query))
            else:
                requests.append(TopKRequest(query, k=4, weights=(0.5, 0.3, 0.2)))
        sequential = QueryService(engine).run_batch(requests)
        sharded = ShardedQueryService(
            engine, workers=3, routing="locality", executor="thread"
        ).run_batch(requests)
        assert len(sequential.outcomes) == len(sharded.outcomes) == 100
        for a, b in zip(sequential.outcomes, sharded.outcomes):
            assert a.ticket == b.ticket
            assert a.request == b.request
            if isinstance(a.request, SkylineRequest):
                assert [f.facility_id for f in a.result] == [f.facility_id for f in b.result]
                assert [f.costs for f in a.result] == [f.costs for f in b.result]
            else:
                assert [f.facility_id for f in a.result] == [f.facility_id for f in b.result]
                assert [f.score for f in a.result] == [f.score for f in b.result]
