"""Property-based tests (hypothesis) for dominance, classic skylines and aggregates."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.classic.skyline import bnl_skyline, dc_skyline, sfs_skyline
from repro.core.aggregates import WeightedSum
from repro.network.costs import CostVector, dominates, dominates_or_equal
from tests.helpers import exact_skyline

costs = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)


def vectors_of(dimension: int, max_points: int = 40):
    return st.lists(
        st.tuples(*([costs] * dimension)), min_size=0, max_size=max_points
    ).map(lambda rows: {index: row for index, row in enumerate(rows)})


class TestDominanceProperties:
    @given(st.lists(costs, min_size=1, max_size=6))
    def test_dominance_is_irreflexive(self, values):
        assert not dominates(values, values)

    @given(st.lists(costs, min_size=1, max_size=6), st.lists(costs, min_size=1, max_size=6))
    def test_dominance_is_antisymmetric(self, first, second):
        if len(first) != len(second):
            return
        assert not (dominates(first, second) and dominates(second, first))

    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda d: st.tuples(*[st.lists(costs, min_size=d, max_size=d)] * 3)
        )
    )
    def test_dominance_is_transitive(self, triple):
        first, second, third = triple
        if dominates(first, second) and dominates(second, third):
            assert dominates(first, third)

    @given(st.lists(costs, min_size=1, max_size=6))
    def test_scaling_preserves_dominance(self, values):
        scaled_down = [value * 0.5 for value in values]
        if any(value > 0 for value in values):
            assert dominates_or_equal(scaled_down, values)

    @given(st.lists(costs, min_size=1, max_size=4), st.lists(costs, min_size=1, max_size=4))
    def test_dominance_implies_lower_weighted_sum(self, first, second):
        if len(first) != len(second) or not dominates(first, second):
            return
        aggregate = WeightedSum.uniform(len(first))
        assert aggregate(first) <= aggregate(second) + 1e-9

    @given(st.lists(costs, min_size=1, max_size=6), st.floats(min_value=0.0, max_value=10.0))
    def test_cost_vector_scale_and_add_are_componentwise(self, values, factor):
        vector = CostVector(values)
        scaled = vector.scale(factor)
        assert scaled.values == tuple(value * factor for value in values)
        doubled = vector + vector
        assert doubled.values == tuple(2 * value for value in values)


class TestClassicSkylineProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=4).flatmap(vectors_of))
    def test_all_algorithms_match_brute_force(self, points):
        expected = exact_skyline(points)
        assert bnl_skyline(points) == expected
        assert sfs_skyline(points) == expected
        assert dc_skyline(points) == expected

    @settings(max_examples=40, deadline=None)
    @given(vectors_of(3))
    def test_skyline_is_subset_and_non_dominated(self, points):
        skyline = bnl_skyline(points)
        assert skyline <= set(points)
        for member in skyline:
            assert not any(
                dominates(points[other], points[member]) for other in points if other != member
            )

    @settings(max_examples=40, deadline=None)
    @given(vectors_of(2))
    def test_every_non_member_is_dominated_by_a_member(self, points):
        skyline = sfs_skyline(points)
        for key in points:
            if key not in skyline:
                assert any(dominates(points[other], points[key]) for other in skyline)

    @settings(max_examples=40, deadline=None)
    @given(vectors_of(3))
    def test_skyline_invariant_under_adding_dominated_point(self, points):
        if not points:
            return
        skyline_before = bnl_skyline(points)
        # Add a point strictly worse than an existing one: the skyline must not change.
        victim = next(iter(points.values()))
        extended = dict(points)
        extended[max(points) + 1] = tuple(value + 1.0 for value in victim)
        assert bnl_skyline(extended) == skyline_before

    @settings(max_examples=40, deadline=None)
    @given(vectors_of(2), st.sampled_from([1.0, 2.0, 4.0, 8.0]))
    def test_skyline_invariant_under_uniform_scaling(self, points, factor):
        # Power-of-two factors >= 1 keep the scaling exact for every float, so
        # the invariant holds without underflow/rounding collapsing a strict
        # dominance into a tie (e.g. 5e-324 * 0.5 == 0.0).
        scaled = {key: tuple(value * factor for value in vector) for key, vector in points.items()}
        assert bnl_skyline(scaled) == bnl_skyline(points)


class TestAggregateProperties:
    weights = st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=5)

    @settings(max_examples=60)
    @given(weights.flatmap(lambda w: st.tuples(st.just(w), st.lists(costs, min_size=len(w), max_size=len(w)))))
    def test_weighted_sum_monotone_in_each_coordinate(self, data):
        weights, vector = data
        aggregate = WeightedSum(tuple(weights))
        base = aggregate(vector)
        for index in range(len(vector)):
            bumped = list(vector)
            bumped[index] += 1.0
            assert aggregate(bumped) >= base

    @settings(max_examples=60)
    @given(weights.flatmap(lambda w: st.tuples(st.just(w), st.lists(costs, min_size=len(w), max_size=len(w)))))
    def test_weighted_sum_is_homogeneous(self, data):
        weights, vector = data
        aggregate = WeightedSum(tuple(weights))
        doubled = aggregate([2 * value for value in vector])
        assert abs(doubled - 2 * aggregate(vector)) < 1e-6 * max(1.0, abs(doubled))
