"""Tests for the conventional skyline algorithms (BNL, SFS, divide & conquer)."""

from __future__ import annotations

import random

import pytest

from repro.classic.skyline import bnl_skyline, dc_skyline, is_skyline_member, sfs_skyline
from repro.errors import QueryError
from tests.helpers import exact_skyline

ALGORITHMS = [bnl_skyline, sfs_skyline, dc_skyline]


def random_points(count: int, dimensions: int, seed: int, *, integers: bool = False):
    rng = random.Random(seed)
    if integers:
        return {key: tuple(float(rng.randint(0, 5)) for _ in range(dimensions)) for key in range(count)}
    return {key: tuple(rng.uniform(0, 100) for _ in range(dimensions)) for key in range(count)}


class TestAllAlgorithmsAgree:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_empty_input(self, algorithm):
        assert algorithm({}) == set()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_point(self, algorithm):
        assert algorithm({7: (1.0, 2.0)}) == {7}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_simple_known_case(self, algorithm):
        points = {
            "a": (1.0, 5.0),
            "b": (3.0, 3.0),
            "c": (5.0, 1.0),
            "d": (4.0, 4.0),  # dominated by b
            "e": (1.0, 5.0),  # exact duplicate of a: also in the skyline
        }
        assert algorithm(points) == {"a", "b", "c", "e"}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("dimensions", [1, 2, 3, 5])
    def test_matches_exact_on_random_floats(self, algorithm, dimensions):
        points = random_points(120, dimensions, seed=dimensions)
        assert algorithm(points) == exact_skyline(points)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_exact_on_tied_integers(self, algorithm):
        for seed in range(5):
            points = random_points(60, 3, seed=seed, integers=True)
            assert algorithm(points) == exact_skyline(points)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_points_identical(self, algorithm):
        points = {key: (2.0, 2.0) for key in range(10)}
        assert algorithm(points) == set(range(10))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_total_order_chain(self, algorithm):
        points = {key: (float(key), float(key)) for key in range(20)}
        assert algorithm(points) == {0}

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_anti_chain(self, algorithm):
        points = {key: (float(key), float(20 - key)) for key in range(20)}
        assert algorithm(points) == set(range(20))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(QueryError):
            bnl_skyline({1: (1.0, 2.0), 2: (1.0,)})


class TestIsSkylineMember:
    def test_member_and_non_member(self):
        points = {"a": (1.0, 5.0), "b": (3.0, 3.0), "d": (4.0, 4.0)}
        assert is_skyline_member("a", points)
        assert is_skyline_member("b", points)
        assert not is_skyline_member("d", points)

    def test_duplicate_points_are_members(self):
        points = {"a": (1.0, 1.0), "b": (1.0, 1.0)}
        assert is_skyline_member("a", points)
        assert is_skyline_member("b", points)
