"""Streaming dataset generation and the dataset-backed session/CLI path.

The streaming builder (:func:`build_packed_dataset`) must write the exact
bytes the materialise-then-pack path produces — layout parity by
construction is the property that lets million-node packs be built without
ever holding the graph in RAM while staying bit-compatible with everything
the in-memory pipeline pins.
"""

from __future__ import annotations

import pytest

from repro.api import ExecutionPolicy, Session
from repro.cli import main
from repro.core.engine import MCNQueryEngine
from repro.datagen.road_network import (
    PackedDatasetSpec,
    build_packed_dataset,
    materialize_packed_dataset,
)
from repro.errors import DataGenerationError, PackChecksumError, PolicyError
from repro.network import NetworkLocation
from repro.storage import NetworkStorage, open_dataset, pack_network_storage

SPEC = PackedDatasetSpec(
    rows=10,
    cols=9,
    num_cost_types=2,
    num_facilities=40,
    street_density=0.4,
    shortcut_fraction=0.01,
    seed=7,
    page_size=512,
)


@pytest.fixture(scope="module")
def streamed_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("datasets") / "streamed.mcnpack"
    build_packed_dataset(SPEC, str(path))
    return path


@pytest.fixture(scope="module")
def materialized(tmp_path_factory):
    graph, facilities = materialize_packed_dataset(SPEC)
    return graph, facilities


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 0},
            {"cols": 1},
            {"num_cost_types": 0},
            {"num_facilities": -1},
            {"street_density": 1.5},
            {"shortcut_fraction": -0.1},
            {"cost_range": (5.0, 1.0)},
            {"page_size": 0},
        ],
    )
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(DataGenerationError):
            PackedDatasetSpec(**kwargs)

    def test_payload_round_trip(self):
        assert PackedDatasetSpec.from_payload(SPEC.to_payload()) == SPEC


class TestStreamingParity:
    def test_streamed_pack_is_byte_identical_to_materialized(
        self, streamed_path, materialized, tmp_path
    ):
        graph, facilities = materialized
        storage = NetworkStorage.build(graph, facilities, page_size=SPEC.page_size)
        reference = tmp_path / "materialized.mcnpack"
        pack_network_storage(
            storage,
            str(reference),
            extras={"generator": "packed-grid", "spec": SPEC.to_payload()},
        )
        assert streamed_path.read_bytes() == reference.read_bytes()

    def test_same_spec_same_checksum(self, streamed_path, tmp_path):
        again = tmp_path / "again.mcnpack"
        catalog = build_packed_dataset(SPEC, str(again))
        with open_dataset(str(streamed_path)) as first:
            assert first.catalog.checksum == catalog.checksum

    def test_different_seed_different_checksum(self, streamed_path, tmp_path):
        other = tmp_path / "other.mcnpack"
        catalog = build_packed_dataset(
            PackedDatasetSpec(
                rows=SPEC.rows,
                cols=SPEC.cols,
                num_cost_types=SPEC.num_cost_types,
                num_facilities=SPEC.num_facilities,
                street_density=SPEC.street_density,
                shortcut_fraction=SPEC.shortcut_fraction,
                seed=SPEC.seed + 1,
                page_size=SPEC.page_size,
            ),
            str(other),
        )
        with open_dataset(str(streamed_path)) as first:
            assert first.catalog.checksum != catalog.checksum

    def test_catalog_counts_match_the_spec(self, streamed_path):
        with open_dataset(str(streamed_path)) as dataset:
            catalog = dataset.catalog
            assert catalog.num_nodes == SPEC.num_nodes
            assert catalog.num_facilities == SPEC.num_facilities
            assert catalog.num_cost_types == SPEC.num_cost_types
            assert catalog.extras["generator"] == "packed-grid"
            assert catalog.extras["spec"] == SPEC.to_payload()

    def test_queries_match_the_simulated_storage(self, streamed_path, materialized):
        graph, facilities = materialized
        storage = NetworkStorage.build(
            graph, facilities, page_size=SPEC.page_size, buffer_fraction=0.02
        )
        sim = MCNQueryEngine(graph, facilities, storage=storage)
        with open_dataset(str(streamed_path)) as dataset:
            packed = dataset.storage(
                buffer_fraction=0.02, graph=graph, facilities=facilities
            )
            filed = MCNQueryEngine(graph, facilities, accessor=packed)
            for node_id in (0, SPEC.num_nodes // 2, SPEC.num_nodes - 1):
                query = NetworkLocation.at_node(node_id)
                want = sim.skyline(query)
                got = filed.skyline(query)
                assert got.facility_ids() == want.facility_ids()
                assert got.statistics.io == want.statistics.io


class TestDatasetSession:
    def test_standalone_session_matches_graph_backed(self, streamed_path, materialized):
        graph, facilities = materialized
        query = NetworkLocation.at_node(SPEC.num_nodes // 2)
        with Session(graph, facilities) as reference:
            want = reference.skyline(query).result.facility_ids()
        with Session(dataset_path=str(streamed_path)) as session:
            response = session.skyline(query)
            assert response.result.facility_ids() == want
            assert response.io.page_reads > 0

    def test_from_dataset_classmethod(self, streamed_path):
        with Session.from_dataset(str(streamed_path)) as session:
            response = session.skyline(NetworkLocation.at_node(0))
            assert len(response.result.facility_ids()) >= 1

    def test_dataset_session_is_read_only(self, streamed_path):
        with Session(dataset_path=str(streamed_path)) as session:
            with pytest.raises(PolicyError, match="read-only"):
                session.monitor([])

    def test_dataset_session_rejects_graph_arguments(self, streamed_path, materialized):
        graph, facilities = materialized
        with pytest.raises(PolicyError):
            Session(graph, facilities, dataset_path=str(streamed_path))

    def test_dataset_residency_policy_on_graph_backed_session(
        self, streamed_path, materialized
    ):
        graph, facilities = materialized
        policy = ExecutionPolicy(residency="dataset", dataset_path=str(streamed_path))
        query = NetworkLocation.at_node(1)
        with Session(graph, facilities) as session:
            want = session.skyline(query).result.facility_ids()
            response = session.skyline(query, policy=policy)
            assert response.result.facility_ids() == want
            assert response.io.page_reads > 0

    def test_mismatched_pack_rejected(self, materialized, tmp_path):
        other = tmp_path / "other-shape.mcnpack"
        build_packed_dataset(
            PackedDatasetSpec(rows=4, cols=4, num_cost_types=2, num_facilities=5),
            str(other),
        )
        graph, facilities = materialized
        policy = ExecutionPolicy(residency="dataset", dataset_path=str(other))
        with Session(graph, facilities) as session:
            with pytest.raises(PolicyError, match="num_nodes"):
                session.skyline(NetworkLocation.at_node(0), policy=policy)

    def test_dataset_residency_requires_a_path(self):
        with pytest.raises(PolicyError, match="dataset_path"):
            ExecutionPolicy(residency="dataset")


class TestDatasetCli:
    def test_build_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "cli.mcnpack"
        code = main(
            [
                "build-dataset",
                str(path),
                "--rows", "6",
                "--cols", "6",
                "--facilities", "12",
                "--page-size", "512",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0, output
        assert f"wrote {path}" in output
        assert "checksum:" in output

        code = main(["inspect-dataset", str(path)])
        output = capsys.readouterr().out
        assert code == 0, output
        assert "sha256: verified" in output

        code = main(["inspect-dataset", str(path), "--no-verify"])
        output = capsys.readouterr().out
        assert code == 0, output
        assert "sha256: skipped" in output

    def test_inspect_corrupted_pack_exits_2(self, tmp_path, capsys):
        path = tmp_path / "corrupt.mcnpack"
        code = main(
            ["build-dataset", str(path), "--rows", "5", "--cols", "5", "--facilities", "6"]
        )
        capsys.readouterr()
        assert code == 0
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF
        path.write_bytes(bytes(data))
        assert main(["inspect-dataset", str(path)]) == 2
        error_text = capsys.readouterr().err
        assert "SHA-256" in error_text

    def test_build_into_missing_directory_exits_2(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "x.mcnpack"
        assert main(["build-dataset", str(target)]) == 2
        assert capsys.readouterr().err

    def test_inspect_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["inspect-dataset", str(tmp_path / "absent.mcnpack")]) == 2
        assert capsys.readouterr().err

    def test_corruption_error_is_typed(self, tmp_path):
        path = tmp_path / "typed.mcnpack"
        build_packed_dataset(
            PackedDatasetSpec(rows=4, cols=4, num_facilities=4), str(path)
        )
        data = bytearray(path.read_bytes())
        data[200] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(PackChecksumError):
            open_dataset(str(path))
