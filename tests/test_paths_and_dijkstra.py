"""Unit tests for Path objects and the single-cost Dijkstra primitives."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, LocationError
from repro.network import (
    FacilitySet,
    MultiCostGraph,
    NetworkLocation,
    Path,
    all_facility_cost_vectors,
    shortest_path_between_nodes,
    single_source_facility_costs,
    single_source_node_costs,
)


class TestPath:
    def test_from_node_sequence_sums_costs(self, line_graph):
        path = Path.from_node_sequence(line_graph, [0, 1, 2, 3])
        assert path.costs.values == (6.0,)
        assert path.num_hops == 3

    def test_single_node_path(self, line_graph):
        path = Path.from_node_sequence(line_graph, [2])
        assert path.costs.values == (0.0,)
        assert path.num_hops == 0

    def test_non_adjacent_nodes_rejected(self, line_graph):
        with pytest.raises(GraphError):
            Path.from_node_sequence(line_graph, [0, 2])

    def test_empty_path_rejected(self, line_graph):
        with pytest.raises(GraphError):
            Path.from_node_sequence(line_graph, [])

    def test_cost_accessor(self, line_graph):
        path = Path.from_node_sequence(line_graph, [0, 1])
        assert path.cost(0) == 1.0

    def test_repr_shows_chain(self, line_graph):
        assert "0 -> 1" in repr(Path.from_node_sequence(line_graph, [0, 1]))


class TestSingleSourceNodeCosts:
    def test_line_graph_distances(self, line_graph):
        distances = single_source_node_costs(line_graph, NetworkLocation.at_node(0), 0)
        assert distances == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0, 4: 10.0}

    def test_source_on_edge(self, line_graph):
        # Edge 1 connects nodes 1-2 with cost 2 and length 2; offset 0.5 from node 1.
        source = NetworkLocation.on_edge(1, 0.5)
        distances = single_source_node_costs(line_graph, source, 0)
        assert distances[1] == pytest.approx(0.5)
        assert distances[2] == pytest.approx(1.5)
        assert distances[0] == pytest.approx(1.5)

    def test_bad_cost_index_rejected(self, line_graph):
        with pytest.raises(LocationError):
            single_source_node_costs(line_graph, NetworkLocation.at_node(0), 3)

    def test_tiny_grid_uses_cheapest_route(self, tiny_graph):
        distances = single_source_node_costs(tiny_graph, NetworkLocation.at_node(3), 0)
        # Fastest way to node 5 is across the highway: 2 + 2 = 4 minutes.
        assert distances[5] == pytest.approx(4.0)
        # Under the dollar cost, the highway costs 2 $ but is still the only
        # consideration for the *time* expansion; check dollars separately.
        dollars = single_source_node_costs(tiny_graph, NetworkLocation.at_node(3), 1)
        assert dollars[5] == pytest.approx(0.0)  # free route around the highway exists


class TestFacilityCosts:
    def test_facility_costs_match_manual_computation(self, tiny_graph, tiny_facilities):
        query = NetworkLocation.at_node(3)
        times = single_source_facility_costs(tiny_graph, tiny_facilities, query, 0)
        dollars = single_source_facility_costs(tiny_graph, tiny_facilities, query, 1)
        # Facility 1 sits 1.0 into highway edge 4-5 (length 2): fastest from 3 is 2 + 1 = 3 min.
        assert times[1] == pytest.approx(3.0)
        # The cheapest way to facility 1 in dollars still has to enter the highway edge:
        # going 3-4 (1 $) then half the 4-5 edge (0.5 $) = 1.5 $, or around via 5: 0 $ + half edge from 5 (0.5 $).
        assert dollars[1] == pytest.approx(0.5)

    def test_all_cost_vectors_combines_dimensions(self, tiny_graph, tiny_facilities):
        vectors = all_facility_cost_vectors(tiny_graph, tiny_facilities, NetworkLocation.at_node(3))
        assert set(vectors) == {0, 1, 2}
        assert vectors[1].values == pytest.approx((3.0, 0.5))

    def test_facility_on_query_edge_uses_direct_route(self, line_graph):
        facilities = FacilitySet(line_graph)
        facilities.add_on_edge(0, 1, 1.5)  # edge 1-2, offset 1.5 of length 2
        source = NetworkLocation.on_edge(1, 0.5)
        costs = single_source_facility_costs(line_graph, facilities, source, 0)
        assert costs[0] == pytest.approx(1.0)

    def test_unreachable_facility_omitted(self):
        graph = MultiCostGraph(1)
        for node_id in range(4):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0])
        graph.add_edge(2, 3, [1.0])
        facilities = FacilitySet(graph)
        facilities.add_on_edge(0, 1, 0.5)  # on the disconnected component
        costs = single_source_facility_costs(graph, facilities, NetworkLocation.at_node(0), 0)
        assert costs == {}


class TestShortestPathBetweenNodes:
    def test_path_endpoints_and_cost(self, tiny_graph):
        path = shortest_path_between_nodes(tiny_graph, 3, 5, 0)
        assert path.nodes[0] == 3 and path.nodes[-1] == 5
        assert path.cost(0) == pytest.approx(4.0)

    def test_different_cost_types_can_give_different_paths(self, tiny_graph):
        fastest = shortest_path_between_nodes(tiny_graph, 3, 5, 0)
        cheapest = shortest_path_between_nodes(tiny_graph, 3, 5, 1)
        assert fastest.cost(0) == pytest.approx(4.0)
        assert cheapest.cost(1) == pytest.approx(0.0)
        assert fastest.nodes != cheapest.nodes

    def test_source_equals_target(self, tiny_graph):
        path = shortest_path_between_nodes(tiny_graph, 4, 4, 0)
        assert path.nodes == (4,)
        assert path.cost(0) == 0.0

    def test_unknown_nodes_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            shortest_path_between_nodes(tiny_graph, 0, 99, 0)
        with pytest.raises(GraphError):
            shortest_path_between_nodes(tiny_graph, 99, 0, 0)

    def test_unreachable_target_rejected(self):
        graph = MultiCostGraph(1)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(0, 1, [1.0])
        with pytest.raises(GraphError):
            shortest_path_between_nodes(graph, 0, 2, 0)

    def test_directed_graph_respects_direction(self):
        graph = MultiCostGraph(1, directed=True)
        for node_id in range(3):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0])
        graph.add_edge(1, 2, [1.0])
        graph.add_edge(2, 0, [10.0])
        forward = shortest_path_between_nodes(graph, 0, 2, 0)
        assert forward.cost(0) == pytest.approx(2.0)
        backward = shortest_path_between_nodes(graph, 2, 0, 0)
        assert backward.cost(0) == pytest.approx(10.0)
