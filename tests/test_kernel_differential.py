"""Differential tests: every expansion-kernel implementation versus the accessor path.

The shared battery lives in :mod:`tests.expansion_conformance`; here it is
instantiated once per implementation:

* ``TestLegacyKernelConformance`` — the pure-python ``ExpansionKernel``
  constructed directly (the PR-4 fast path, now the fallback);
* ``TestFallbackSelectionConformance`` — whatever the selection layer
  resolves for ``vector=False`` (pinned to be the pure-python kernel, so the
  ``REPRO_VECTOR=0`` escape hatch provably preserves semantics);
* ``TestVectorKernelConformance`` — the numpy ``VectorExpansionKernel``
  (skipped wholesale when numpy is unavailable).

Freshness semantics of the compiled snapshot (shared by all kernels) stay
here, as do any checks that are not per-implementation.
"""

from __future__ import annotations

import pytest

from repro.core.engine import MCNQueryEngine
from repro.core.kernel import ExpansionKernel
from repro.core.vector import NUMPY_AVAILABLE, VectorExpansionKernel, kernel_class_for
from repro.datagen import WorkloadSpec, make_workload
from repro.network.accessor import InMemoryAccessor
from repro.network.compiled import CompiledGraph
from repro.network.facilities import FacilitySet
from repro.storage.scheme import NetworkStorage
from tests.expansion_conformance import ExpansionConformanceSuite


class TestLegacyKernelConformance(ExpansionConformanceSuite):
    kernel_class = ExpansionKernel
    vector = False


class TestFallbackSelectionConformance(ExpansionConformanceSuite):
    kernel_class = kernel_class_for(False)
    vector = False

    def test_fallback_is_the_pure_python_kernel(self):
        assert self.kernel_class is ExpansionKernel


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not importable")
class TestVectorKernelConformance(ExpansionConformanceSuite):
    kernel_class = VectorExpansionKernel
    vector = True


class TestFreshness:
    """Facility mutations against a live compiled snapshot."""

    def test_mutations_are_visible_through_the_fast_path(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=120, num_facilities=30, num_cost_types=2, num_queries=1, seed=5)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        fast = MCNQueryEngine(workload.graph, facilities, compiled=True)
        query = workload.queries[0]
        before = fast.skyline(query).facility_ids()
        # Plant a facility at the query's exact location — zero distance in
        # every cost type, so nothing can dominate it — and require it to
        # surface through the (refreshed) compiled snapshot.
        if query.edge_id is not None:
            edge_id, offset = query.edge_id, query.offset
        else:
            edge = workload.graph.neighbors(query.node_id)[0][1]
            edge_id = edge.edge_id
            offset = 0.0 if edge.u == query.node_id else edge.length
        facilities.add_on_edge(9_999, edge_id, offset=offset)
        after = fast.skyline(query).facility_ids()
        assert 9_999 in after
        assert 9_999 not in before
        facilities.remove(9_999)
        assert fast.skyline(query).facility_ids() == before

    def test_incremental_refresh_matches_full_rebuild(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=100, num_facilities=25, num_cost_types=2, num_queries=1, seed=29)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        accessor = InMemoryAccessor(workload.graph, facilities)
        compiled = CompiledGraph.from_accessor(accessor)
        edges = sorted(edge.edge_id for edge in workload.graph.edges())
        facilities.add_on_edge(700, edges[0], offset=0.0)
        facilities.add_on_edge(701, edges[1], offset=0.0)
        facilities.remove(700)
        compiled.ensure_fresh()  # patches only the two touched edges
        rebuilt = CompiledGraph.from_accessor(accessor)
        for cost_index in range(2):
            assert compiled.hot_facilities(cost_index) == rebuilt.hot_facilities(cost_index)
        assert compiled.facility_edge_of == rebuilt.facility_edge_of
        assert compiled.facilities_revision == facilities.revision

    def test_storage_backed_snapshot_rejects_mutation(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=80, num_facilities=20, num_cost_types=2, num_queries=1, seed=7)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        storage = NetworkStorage.build(workload.graph, facilities, page_size=1024)
        compiled = CompiledGraph.from_accessor(storage)
        facilities.add_on_edge(500, next(iter(workload.graph.edges())).edge_id, offset=0.0)
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            compiled.ensure_fresh()
