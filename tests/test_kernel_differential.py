"""Differential tests: the expansion kernel versus the accessor path.

The columnar fast path promises *bit-identical* behaviour: same facility
streams, same settled maps, same results, same heap pops, and exactly the
same logical and physical I/O accounting.  These tests pin that promise
across random graphs, dimensions, buffer sizes, both sharing regimes and
candidate-mode restrictions — if the kernel ever drifts from the legacy
expansion in any observable way, something here fails.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import MCNQueryEngine
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.kernel import ExpansionKernel, make_kernel_data_layer
from repro.datagen import WorkloadSpec, make_workload
from repro.monitor import MonitoringService
from repro.monitor.service import tick_report_to_payload
from repro.datagen.updates import UpdateStreamSpec, make_update_stream
from repro.network.accessor import FetchOnceCache, InMemoryAccessor
from repro.network.compiled import CompiledGraph
from repro.network.facilities import FacilitySet
from repro.service import QueryService, SkylineRequest, TopKRequest
from repro.storage.scheme import NetworkStorage


def _io_tuple(stats):
    return (
        stats.adjacency_requests,
        stats.facility_requests,
        stats.facility_tree_requests,
        stats.page_reads,
        stats.buffer_hits,
    )


def _drain(expansion):
    hits = []
    while True:
        hit = expansion.next_facility()
        if hit is None:
            break
        hits.append((hit.facility_id, hit.cost, hit.cost_index, hit.record))
    return hits


def _make_engines(workload, *, use_disk, page_size=1024, buffer_fraction=0.01):
    if use_disk:
        legacy = MCNQueryEngine(
            workload.graph,
            workload.facilities,
            use_disk=True,
            page_size=page_size,
            buffer_fraction=buffer_fraction,
            compiled=False,
        )
        fast = MCNQueryEngine(
            workload.graph,
            workload.facilities,
            use_disk=True,
            page_size=page_size,
            buffer_fraction=buffer_fraction,
            compiled=True,
        )
    else:
        legacy = MCNQueryEngine(workload.graph, workload.facilities, compiled=False)
        fast = MCNQueryEngine(workload.graph, workload.facilities, compiled=True)
    return legacy, fast


def _reset(engine):
    if engine.storage is not None:
        engine.storage.reset_statistics(clear_buffer=True)


class TestRawExpansionParity:
    """Kernel vs legacy expansion, drained facility by facility."""

    @pytest.mark.parametrize("share", [False, True], ids=["direct", "fetch-once"])
    def test_full_drain_is_bit_identical(self, share):
        workload = make_workload(
            WorkloadSpec(num_nodes=180, num_facilities=50, num_cost_types=2, num_queries=4, seed=11)
        )
        accessor_a = InMemoryAccessor(workload.graph, workload.facilities)
        accessor_b = InMemoryAccessor(workload.graph, workload.facilities)
        compiled = CompiledGraph.from_accessor(accessor_b)
        for query in workload.queries:
            seeds = ExpansionSeeds.from_query(workload.graph, query)
            legacy_layer = FetchOnceCache(accessor_a) if share else accessor_a
            kernel_layer = make_kernel_data_layer(
                compiled, target=accessor_b, fetch_once=share
            )
            for cost_index in range(workload.graph.num_cost_types):
                legacy = NearestFacilityExpansion(legacy_layer, seeds, cost_index)
                kernel = ExpansionKernel(kernel_layer, seeds, cost_index)
                while True:
                    assert kernel.head_key() == legacy.head_key()
                    legacy_hit = legacy.next_facility()
                    kernel_hit = kernel.next_facility()
                    assert kernel_hit == legacy_hit
                    assert kernel.heap_pops == legacy.heap_pops
                    if legacy_hit is None:
                        break
                assert dict(kernel.settled_costs) == dict(legacy.settled_costs)
                assert dict(kernel.reported_costs) == dict(legacy.reported_costs)
                assert kernel.facilities_retrieved == legacy.facilities_retrieved
        assert _io_tuple(accessor_a.statistics) == _io_tuple(accessor_b.statistics)

    def test_candidate_mode_restriction_parity(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=150, num_facilities=40, num_cost_types=2, num_queries=2, seed=23)
        )
        accessor_a = InMemoryAccessor(workload.graph, workload.facilities)
        accessor_b = InMemoryAccessor(workload.graph, workload.facilities)
        compiled = CompiledGraph.from_accessor(accessor_b)
        query = workload.queries[0]
        seeds = ExpansionSeeds.from_query(workload.graph, query)
        legacy = NearestFacilityExpansion(accessor_a, seeds, 0)
        kernel = ExpansionKernel(
            make_kernel_data_layer(compiled, target=accessor_b), seeds, 0
        )
        # Report two facilities, then restrict both to the records of the
        # first few remaining facilities and drain.
        for _ in range(2):
            assert kernel.next_facility() == legacy.next_facility()
        remaining = [
            facility
            for facility in workload.facilities
            if facility.facility_id not in dict(legacy.reported_costs)
        ][:5]
        candidates = {}
        for facility in remaining:
            record_list = accessor_a.edge_facilities(facility.edge_id)
            accessor_b.edge_facilities(facility.edge_id)  # keep counters aligned
            for record in record_list:
                if record.facility_id == facility.facility_id:
                    candidates.setdefault(facility.edge_id, []).append(record)
        legacy.enter_candidate_mode(candidates)
        kernel.enter_candidate_mode(candidates)
        assert _drain(kernel) == _drain(legacy)
        assert kernel.heap_pops == legacy.heap_pops
        assert _io_tuple(accessor_a.statistics) == _io_tuple(accessor_b.statistics)

    def test_settled_views_are_read_only(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=60, num_facilities=15, num_cost_types=2, num_queries=1, seed=3)
        )
        accessor = InMemoryAccessor(workload.graph, workload.facilities)
        compiled = CompiledGraph.from_accessor(accessor)
        seeds = ExpansionSeeds.from_query(workload.graph, workload.queries[0])
        for expansion in (
            NearestFacilityExpansion(accessor, seeds, 0),
            ExpansionKernel(make_kernel_data_layer(compiled, target=accessor), seeds, 0),
        ):
            expansion.next_facility()
            with pytest.raises(TypeError):
                expansion.settled_costs[0] = 0.0  # type: ignore[index]
            with pytest.raises(TypeError):
                expansion.reported_costs[0] = 0.0  # type: ignore[index]


class TestSearchParity:
    """Full skyline / top-k searches through the engine toggle."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dims=st.integers(min_value=1, max_value=4),
        use_disk=st.booleans(),
        buffer_fraction=st.sampled_from([0.0, 0.01, 0.02]),
        algorithm=st.sampled_from(["lsa", "cea"]),
    )
    def test_query_results_and_counters_identical(
        self, seed, dims, use_disk, buffer_fraction, algorithm
    ):
        workload = make_workload(
            WorkloadSpec(
                num_nodes=90,
                num_facilities=25,
                num_cost_types=dims,
                num_queries=2,
                seed=seed,
            )
        )
        legacy, fast = _make_engines(
            workload, use_disk=use_disk, buffer_fraction=buffer_fraction
        )
        weights = [1.0 / dims] * dims
        for query in workload.queries:
            _reset(legacy), _reset(fast)
            legacy_result = legacy.skyline(query, algorithm=algorithm)
            fast_result = fast.skyline(query, algorithm=algorithm)
            assert [(f.facility_id, f.costs) for f in fast_result] == [
                (f.facility_id, f.costs) for f in legacy_result
            ]
            assert fast_result.statistics.heap_pops == legacy_result.statistics.heap_pops
            assert fast_result.statistics.nn_retrievals == legacy_result.statistics.nn_retrievals
            assert _io_tuple(fast_result.statistics.io) == _io_tuple(legacy_result.statistics.io)
            _reset(legacy), _reset(fast)
            legacy_top = legacy.top_k(query, 3, weights=weights, algorithm=algorithm)
            fast_top = fast.top_k(query, 3, weights=weights, algorithm=algorithm)
            assert [(f.facility_id, f.score, f.costs) for f in fast_top] == [
                (f.facility_id, f.score, f.costs) for f in legacy_top
            ]
            assert fast_top.statistics.heap_pops == legacy_top.statistics.heap_pops
            assert _io_tuple(fast_top.statistics.io) == _io_tuple(legacy_top.statistics.io)

    def test_incremental_top_k_parity(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=160, num_facilities=45, num_cost_types=3, num_queries=2, seed=9)
        )
        legacy, fast = _make_engines(workload, use_disk=False)
        for query in workload.queries:
            legacy_stream = legacy.iter_top(query, weights=[0.5, 0.3, 0.2])
            fast_stream = fast.iter_top(query, weights=[0.5, 0.3, 0.2])
            legacy_items = legacy_stream.take(10)
            fast_items = fast_stream.take(10)
            assert [(i.facility_id, i.score) for i in fast_items] == [
                (i.facility_id, i.score) for i in legacy_items
            ]

    def test_batched_service_reports_identical(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=200, num_facilities=70, num_cost_types=2, num_queries=12, seed=31)
        )
        legacy, fast = _make_engines(workload, use_disk=True, page_size=1024)
        requests = []
        for index, query in enumerate(workload.queries):
            if index % 2 == 0:
                requests.append(SkylineRequest(query))
            else:
                requests.append(TopKRequest(query, k=3, weights=[0.6, 0.4]))
        legacy_report = QueryService(legacy).run_batch(requests)
        fast_report = QueryService(fast).run_batch(requests)
        for legacy_outcome, fast_outcome in zip(legacy_report.outcomes, fast_report.outcomes):
            assert fast_outcome.result.facility_ids() == legacy_outcome.result.facility_ids()
            assert _io_tuple(fast_outcome.io) == _io_tuple(legacy_outcome.io)
        assert _io_tuple(fast_report.io) == _io_tuple(legacy_report.io)
        # The cross-query cache sees the identical request stream, so every
        # hit/miss counter matches too.
        assert vars(fast_report.cache) == vars(legacy_report.cache)

    def test_monitor_ticks_identical(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=150, num_facilities=45, num_cost_types=2, num_queries=4, seed=17)
        )
        stream = make_update_stream(
            workload.graph,
            workload.facilities,
            UpdateStreamSpec(num_ticks=6, updates_per_tick=4, seed=18),
        )
        payloads = {}
        io_totals = {}
        for compiled in (False, True):
            facilities = FacilitySet(workload.graph, iter(workload.facilities))
            service = MonitoringService(workload.graph, facilities, compiled=compiled)
            for query in workload.queries:
                service.subscribe(SkylineRequest(query))
            reports = [service.apply_tick(tick) for tick in stream]
            payloads[compiled] = [tick_report_to_payload(report) for report in reports]
            io_totals[compiled] = sum(report.io.total_requests for report in reports)
        assert payloads[True] == payloads[False]
        assert io_totals[True] == io_totals[False]


class TestFreshness:
    """Facility mutations against a live compiled snapshot."""

    def test_mutations_are_visible_through_the_fast_path(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=120, num_facilities=30, num_cost_types=2, num_queries=1, seed=5)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        fast = MCNQueryEngine(workload.graph, facilities, compiled=True)
        query = workload.queries[0]
        before = fast.skyline(query).facility_ids()
        # Plant a facility at the query's exact location — zero distance in
        # every cost type, so nothing can dominate it — and require it to
        # surface through the (refreshed) compiled snapshot.
        if query.edge_id is not None:
            edge_id, offset = query.edge_id, query.offset
        else:
            edge = workload.graph.neighbors(query.node_id)[0][1]
            edge_id = edge.edge_id
            offset = 0.0 if edge.u == query.node_id else edge.length
        facilities.add_on_edge(9_999, edge_id, offset=offset)
        after = fast.skyline(query).facility_ids()
        assert 9_999 in after
        assert 9_999 not in before
        facilities.remove(9_999)
        assert fast.skyline(query).facility_ids() == before

    def test_incremental_refresh_matches_full_rebuild(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=100, num_facilities=25, num_cost_types=2, num_queries=1, seed=29)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        accessor = InMemoryAccessor(workload.graph, facilities)
        compiled = CompiledGraph.from_accessor(accessor)
        edges = sorted(edge.edge_id for edge in workload.graph.edges())
        facilities.add_on_edge(700, edges[0], offset=0.0)
        facilities.add_on_edge(701, edges[1], offset=0.0)
        facilities.remove(700)
        compiled.ensure_fresh()  # patches only the two touched edges
        rebuilt = CompiledGraph.from_accessor(accessor)
        for cost_index in range(2):
            assert compiled.hot_facilities(cost_index) == rebuilt.hot_facilities(cost_index)
        assert compiled.facility_edge_of == rebuilt.facility_edge_of
        assert compiled.facilities_revision == facilities.revision

    def test_storage_backed_snapshot_rejects_mutation(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=80, num_facilities=20, num_cost_types=2, num_queries=1, seed=7)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        storage = NetworkStorage.build(workload.graph, facilities, page_size=1024)
        compiled = CompiledGraph.from_accessor(storage)
        facilities.add_on_edge(500, next(iter(workload.graph.edges())).edge_id, offset=0.0)
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            compiled.ensure_fresh()
