"""Shared conformance suite: any expansion kernel versus the accessor path.

The columnar fast path promises *bit-identical* behaviour: same facility
streams, same settled maps, same results, same heap pops, and exactly the
same logical and physical I/O accounting.  :class:`ExpansionConformanceSuite`
pins that promise for *one kernel implementation at a time* — subclasses
select which implementation runs (the pure-python ``ExpansionKernel``, the
numpy ``VectorExpansionKernel``, or whatever the selection layer resolves)
and the whole battery re-runs against the legacy
:class:`~repro.core.expansion.NearestFacilityExpansion` reference.  If an
implementation ever drifts from the legacy expansion in any observable way,
something here fails for exactly that implementation.

The suite class is deliberately not named ``Test*`` so pytest only collects
the concrete subclasses (see ``test_kernel_differential.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.policy import ExecutionPolicy
from repro.core.engine import MCNQueryEngine
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.kernel import make_kernel_data_layer
from repro.datagen import WorkloadSpec, make_workload
from repro.datagen.updates import UpdateStreamSpec, make_update_stream
from repro.monitor import MonitoringService
from repro.monitor.service import tick_report_to_payload
from repro.network.accessor import FetchOnceCache, InMemoryAccessor
from repro.network.compiled import CompiledGraph
from repro.network.facilities import FacilitySet
from repro.service import QueryService, SkylineRequest, TopKRequest


def io_tuple(stats):
    return (
        stats.adjacency_requests,
        stats.facility_requests,
        stats.facility_tree_requests,
        stats.page_reads,
        stats.buffer_hits,
    )


def drain(expansion):
    hits = []
    while True:
        hit = expansion.next_facility()
        if hit is None:
            break
        hits.append((hit.facility_id, hit.cost, hit.cost_index, hit.record))
    return hits


class ExpansionConformanceSuite:
    """Bit-identity battery for one kernel implementation.

    Subclasses set :attr:`kernel_class` (constructed as
    ``kernel_class(layer, seeds, cost_index)``) and :attr:`vector` (the
    engine-level selection flag that must resolve to the same
    implementation, so the engine / service / monitor stacks are exercised
    through the real wiring rather than a hand-built kernel).
    """

    #: The kernel implementation under test.
    kernel_class: type | None = None
    #: Engine-level ``vector=`` flag that selects :attr:`kernel_class`.
    vector: bool = False

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def make_kernel(self, layer, seeds, cost_index):
        assert self.kernel_class is not None, "subclass must set kernel_class"
        return self.kernel_class(layer, seeds, cost_index)

    def make_engines(self, workload, *, use_disk, page_size=1024, buffer_fraction=0.01):
        """A (legacy, fast) engine pair over the same workload."""
        if use_disk:
            legacy = MCNQueryEngine(
                workload.graph,
                workload.facilities,
                use_disk=True,
                page_size=page_size,
                buffer_fraction=buffer_fraction,
                compiled=False,
            )
            fast = MCNQueryEngine(
                workload.graph,
                workload.facilities,
                use_disk=True,
                page_size=page_size,
                buffer_fraction=buffer_fraction,
                compiled=True,
                vector=self.vector,
            )
        else:
            legacy = MCNQueryEngine(workload.graph, workload.facilities, compiled=False)
            fast = MCNQueryEngine(
                workload.graph, workload.facilities, compiled=True, vector=self.vector
            )
        return legacy, fast

    @staticmethod
    def reset(engine):
        if engine.storage is not None:
            engine.storage.reset_statistics(clear_buffer=True)

    def test_engine_selects_this_kernel(self):
        """The ``vector`` flag really resolves to the implementation under test."""
        from repro.core.vector import kernel_class_for

        assert kernel_class_for(self.vector) is self.kernel_class

    # ------------------------------------------------------------------ #
    # Raw expansion parity (kernel drained facility by facility)
    # ------------------------------------------------------------------ #
    @pytest.mark.parametrize("share", [False, True], ids=["direct", "fetch-once"])
    def test_full_drain_is_bit_identical(self, share):
        workload = make_workload(
            WorkloadSpec(num_nodes=180, num_facilities=50, num_cost_types=2, num_queries=4, seed=11)
        )
        accessor_a = InMemoryAccessor(workload.graph, workload.facilities)
        accessor_b = InMemoryAccessor(workload.graph, workload.facilities)
        compiled = CompiledGraph.from_accessor(accessor_b)
        for query in workload.queries:
            seeds = ExpansionSeeds.from_query(workload.graph, query)
            legacy_layer = FetchOnceCache(accessor_a) if share else accessor_a
            kernel_layer = make_kernel_data_layer(
                compiled, target=accessor_b, fetch_once=share
            )
            for cost_index in range(workload.graph.num_cost_types):
                legacy = NearestFacilityExpansion(legacy_layer, seeds, cost_index)
                kernel = self.make_kernel(kernel_layer, seeds, cost_index)
                while True:
                    assert kernel.head_key() == legacy.head_key()
                    legacy_hit = legacy.next_facility()
                    kernel_hit = kernel.next_facility()
                    assert kernel_hit == legacy_hit
                    assert kernel.heap_pops == legacy.heap_pops
                    if legacy_hit is None:
                        break
                assert dict(kernel.settled_costs) == dict(legacy.settled_costs)
                assert dict(kernel.reported_costs) == dict(legacy.reported_costs)
                assert kernel.facilities_retrieved == legacy.facilities_retrieved
        assert io_tuple(accessor_a.statistics) == io_tuple(accessor_b.statistics)

    def test_candidate_mode_restriction_parity(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=150, num_facilities=40, num_cost_types=2, num_queries=2, seed=23)
        )
        accessor_a = InMemoryAccessor(workload.graph, workload.facilities)
        accessor_b = InMemoryAccessor(workload.graph, workload.facilities)
        compiled = CompiledGraph.from_accessor(accessor_b)
        query = workload.queries[0]
        seeds = ExpansionSeeds.from_query(workload.graph, query)
        legacy = NearestFacilityExpansion(accessor_a, seeds, 0)
        kernel = self.make_kernel(
            make_kernel_data_layer(compiled, target=accessor_b), seeds, 0
        )
        # Report two facilities, then restrict both to the records of the
        # first few remaining facilities and drain.
        for _ in range(2):
            assert kernel.next_facility() == legacy.next_facility()
        remaining = [
            facility
            for facility in workload.facilities
            if facility.facility_id not in dict(legacy.reported_costs)
        ][:5]
        candidates = {}
        for facility in remaining:
            record_list = accessor_a.edge_facilities(facility.edge_id)
            accessor_b.edge_facilities(facility.edge_id)  # keep counters aligned
            for record in record_list:
                if record.facility_id == facility.facility_id:
                    candidates.setdefault(facility.edge_id, []).append(record)
        legacy.enter_candidate_mode(candidates)
        kernel.enter_candidate_mode(candidates)
        assert drain(kernel) == drain(legacy)
        assert kernel.heap_pops == legacy.heap_pops
        assert io_tuple(accessor_a.statistics) == io_tuple(accessor_b.statistics)

    def test_settled_views_are_read_only(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=60, num_facilities=15, num_cost_types=2, num_queries=1, seed=3)
        )
        accessor = InMemoryAccessor(workload.graph, workload.facilities)
        compiled = CompiledGraph.from_accessor(accessor)
        seeds = ExpansionSeeds.from_query(workload.graph, workload.queries[0])
        for expansion in (
            NearestFacilityExpansion(accessor, seeds, 0),
            self.make_kernel(make_kernel_data_layer(compiled, target=accessor), seeds, 0),
        ):
            expansion.next_facility()
            with pytest.raises(TypeError):
                expansion.settled_costs[0] = 0.0  # type: ignore[index]
            with pytest.raises(TypeError):
                expansion.reported_costs[0] = 0.0  # type: ignore[index]

    # ------------------------------------------------------------------ #
    # Full searches through the engine toggle
    # ------------------------------------------------------------------ #
    # One @given-decorated method is intentionally shared by every
    # implementation subclass, which hypothesis's differing-executors health
    # check would otherwise flag.
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.differing_executors],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dims=st.integers(min_value=1, max_value=4),
        use_disk=st.booleans(),
        buffer_fraction=st.sampled_from([0.0, 0.01, 0.02]),
        algorithm=st.sampled_from(["lsa", "cea"]),
    )
    def test_query_results_and_counters_identical(
        self, seed, dims, use_disk, buffer_fraction, algorithm
    ):
        workload = make_workload(
            WorkloadSpec(
                num_nodes=90,
                num_facilities=25,
                num_cost_types=dims,
                num_queries=2,
                seed=seed,
            )
        )
        legacy, fast = self.make_engines(
            workload, use_disk=use_disk, buffer_fraction=buffer_fraction
        )
        weights = [1.0 / dims] * dims
        for query in workload.queries:
            self.reset(legacy), self.reset(fast)
            legacy_result = legacy.skyline(query, algorithm=algorithm)
            fast_result = fast.skyline(query, algorithm=algorithm)
            assert [(f.facility_id, f.costs) for f in fast_result] == [
                (f.facility_id, f.costs) for f in legacy_result
            ]
            assert fast_result.statistics.heap_pops == legacy_result.statistics.heap_pops
            assert fast_result.statistics.nn_retrievals == legacy_result.statistics.nn_retrievals
            assert io_tuple(fast_result.statistics.io) == io_tuple(legacy_result.statistics.io)
            self.reset(legacy), self.reset(fast)
            legacy_top = legacy.top_k(query, 3, weights=weights, algorithm=algorithm)
            fast_top = fast.top_k(query, 3, weights=weights, algorithm=algorithm)
            assert [(f.facility_id, f.score, f.costs) for f in fast_top] == [
                (f.facility_id, f.score, f.costs) for f in legacy_top
            ]
            assert fast_top.statistics.heap_pops == legacy_top.statistics.heap_pops
            assert io_tuple(fast_top.statistics.io) == io_tuple(legacy_top.statistics.io)

    def test_incremental_top_k_parity(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=160, num_facilities=45, num_cost_types=3, num_queries=2, seed=9)
        )
        legacy, fast = self.make_engines(workload, use_disk=False)
        for query in workload.queries:
            legacy_stream = legacy.iter_top(query, weights=[0.5, 0.3, 0.2])
            fast_stream = fast.iter_top(query, weights=[0.5, 0.3, 0.2])
            legacy_items = legacy_stream.take(10)
            fast_items = fast_stream.take(10)
            assert [(i.facility_id, i.score) for i in fast_items] == [
                (i.facility_id, i.score) for i in legacy_items
            ]

    def test_batched_service_reports_identical(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=200, num_facilities=70, num_cost_types=2, num_queries=12, seed=31)
        )
        legacy, fast = self.make_engines(workload, use_disk=True, page_size=1024)
        requests = []
        for index, query in enumerate(workload.queries):
            if index % 2 == 0:
                requests.append(SkylineRequest(query))
            else:
                requests.append(TopKRequest(query, k=3, weights=[0.6, 0.4]))
        legacy_report = QueryService(legacy).run_batch(requests)
        fast_report = QueryService(fast).run_batch(requests)
        for legacy_outcome, fast_outcome in zip(legacy_report.outcomes, fast_report.outcomes):
            assert fast_outcome.result.facility_ids() == legacy_outcome.result.facility_ids()
            assert io_tuple(fast_outcome.io) == io_tuple(legacy_outcome.io)
        assert io_tuple(fast_report.io) == io_tuple(legacy_report.io)
        # The cross-query cache sees the identical request stream, so every
        # hit/miss counter matches too.
        assert vars(fast_report.cache) == vars(legacy_report.cache)

    def test_monitor_ticks_identical(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=150, num_facilities=45, num_cost_types=2, num_queries=4, seed=17)
        )
        stream = make_update_stream(
            workload.graph,
            workload.facilities,
            UpdateStreamSpec(num_ticks=6, updates_per_tick=4, seed=18),
        )
        vector_mode = "on" if self.vector else "off"
        payloads = {}
        io_totals = {}
        for compiled in (False, True):
            facilities = FacilitySet(workload.graph, iter(workload.facilities))
            policy = ExecutionPolicy(
                compiled="on" if compiled else "off", vector=vector_mode
            )
            service = MonitoringService(workload.graph, facilities, policy=policy)
            for query in workload.queries:
                service.subscribe(SkylineRequest(query))
            reports = [service.apply_tick(tick) for tick in stream]
            payloads[compiled] = [tick_report_to_payload(report) for report in reports]
            io_totals[compiled] = sum(report.io.total_requests for report in reports)
        assert payloads[True] == payloads[False]
        assert io_totals[True] == io_totals[False]
