"""End-to-end integration tests: disk vs memory, examples, and paper-trend checks."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.runner import run_skyline_trial, run_topk_trial
from repro.core.engine import MCNQueryEngine
from repro.datagen import CostDistribution, WorkloadSpec, make_workload
from repro.storage import NetworkStorage

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestDiskMemoryConsistency:
    """The same queries must return identical results on both data layers."""

    def test_full_pipeline_agreement(self, medium_workload):
        graph, facilities = medium_workload.graph, medium_workload.facilities
        storage = NetworkStorage.build(graph, facilities, page_size=1024, buffer_fraction=0.01)
        disk_engine = MCNQueryEngine(graph, facilities, storage=storage)
        memory_engine = MCNQueryEngine(graph, facilities)
        for query in medium_workload.queries:
            for algorithm in ("lsa", "cea"):
                assert (
                    disk_engine.skyline(query, algorithm=algorithm).facility_ids()
                    == memory_engine.skyline(query, algorithm=algorithm).facility_ids()
                )
                disk_top = disk_engine.top_k(query, 4, weights=[0.4, 0.3, 0.2, 0.1], algorithm=algorithm)
                memory_top = memory_engine.top_k(query, 4, weights=[0.4, 0.3, 0.2, 0.1], algorithm=algorithm)
                assert disk_top.facility_ids() == memory_top.facility_ids()

    def test_buffer_size_does_not_change_results(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        query = small_workload.queries[0]
        results = []
        for fraction in (0.0, 0.01, 0.05):
            storage = NetworkStorage.build(graph, facilities, page_size=512, buffer_fraction=fraction)
            engine = MCNQueryEngine(graph, facilities, storage=storage)
            results.append(engine.skyline(query).facility_ids())
        assert results[0] == results[1] == results[2]

    def test_page_size_does_not_change_results(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        query = small_workload.queries[1]
        results = set()
        for page_size in (256, 1024, 4096):
            storage = NetworkStorage.build(graph, facilities, page_size=page_size)
            engine = MCNQueryEngine(graph, facilities, storage=storage)
            results.add(frozenset(engine.skyline(query).facility_ids()))
        assert len(results) == 1


class TestPaperTrends:
    """Directional checks of the headline experimental claims at small scale."""

    def test_cea_beats_lsa_on_page_reads_for_both_query_types(self):
        config = ExperimentConfig(
            num_nodes=400, num_facilities=150, num_cost_types=3, page_size=512, num_queries=3, seed=11
        )
        skyline = run_skyline_trial(config)
        topk = run_topk_trial(config)
        assert skyline.speedup() > 1.2
        assert topk.speedup() > 1.2

    def test_correlated_costs_are_cheaper_than_anti_correlated(self):
        base = ExperimentConfig(
            num_nodes=400, num_facilities=150, num_cost_types=3, page_size=512, num_queries=3, seed=12
        )
        anti = run_skyline_trial(base.with_(distribution=CostDistribution.ANTI_CORRELATED))
        correlated = run_skyline_trial(base.with_(distribution=CostDistribution.CORRELATED))
        assert (
            correlated.measurements["cea"].mean_page_reads
            <= anti.measurements["cea"].mean_page_reads
        )
        assert (
            correlated.measurements["cea"].mean_result_size
            <= anti.measurements["cea"].mean_result_size
        )

    def test_more_cost_types_cost_more(self):
        base = ExperimentConfig(
            num_nodes=400, num_facilities=150, page_size=512, num_queries=3, seed=13
        )
        two = run_skyline_trial(base.with_(num_cost_types=2))
        five = run_skyline_trial(base.with_(num_cost_types=5))
        assert five.measurements["cea"].mean_page_reads > two.measurements["cea"].mean_page_reads

    def test_larger_buffer_reduces_page_reads(self):
        base = ExperimentConfig(
            num_nodes=400, num_facilities=150, num_cost_types=3, page_size=512, num_queries=3, seed=14
        )
        cold = run_skyline_trial(base.with_(buffer_fraction=0.0))
        warm = run_skyline_trial(base.with_(buffer_fraction=0.05))
        for algorithm in ("lsa", "cea"):
            assert (
                warm.measurements[algorithm].mean_page_reads
                < cold.measurements[algorithm].mean_page_reads
            )

    def test_larger_k_costs_more(self):
        base = ExperimentConfig(
            num_nodes=400, num_facilities=150, num_cost_types=3, page_size=512, num_queries=3, seed=15
        )
        small_k = run_topk_trial(base.with_(k=1))
        large_k = run_topk_trial(base.with_(k=16))
        assert (
            large_k.measurements["lsa"].mean_page_reads
            > small_k.measurements["lsa"].mean_page_reads
        )


class TestExamplesRun:
    """Every example script must execute successfully end to end."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "logistics_warehouse.py",
            "university_housing.py",
            "social_network.py",
            "rush_hour_and_updates.py",
        ],
    )
    def test_example_script_runs(self, script, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [script])
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
        output = capsys.readouterr().out
        assert len(output) > 100

    def test_reproduce_experiments_script_runs_one_figure(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["reproduce_experiments.py", "ablation-baseline"])
        runpy.run_path(str(EXAMPLES_DIR / "reproduce_experiments.py"), run_name="__main__")
        output = capsys.readouterr().out
        assert "E11" in output


class TestScenarioFromThePaper:
    """The Figure-1 toll-gate scenario: both warehouses must be skyline members."""

    def test_figure_one_scenario(self):
        from repro.network import FacilitySet, MultiCostGraph, NetworkLocation

        graph = MultiCostGraph(2)  # (driving minutes, toll dollars)
        for node_id in range(3):
            graph.add_node(node_id)
        # q -- p1 corridor: slow but free.    q -- p2 corridor: fast but tolled.
        graph.add_edge(0, 1, [20.0, 0.0])
        graph.add_edge(0, 2, [10.0, 1.0])
        facilities = FacilitySet(graph)
        facilities.add_on_edge(1, 0, 20.0)  # p1 at the end of the free corridor: (20 min, 0 $)
        facilities.add_on_edge(2, 1, 10.0)  # p2 at the end of the tolled corridor: (10 min, 1 $)
        engine = MCNQueryEngine(graph, facilities)
        query = NetworkLocation.at_node(0)
        skyline = engine.skyline(query)
        assert skyline.facility_ids() == {1, 2}
        # Mostly time-sensitive loads -> minimise minutes -> the tolled (fast) warehouse wins.
        sensitive = engine.top_k(query, 1, weights=[0.9, 0.1])
        assert sensitive.facility_ids() == [2]
        # Mostly cost-sensitive loads -> minimise dollars -> the free (slow) warehouse wins.
        # (The weights compensate for minutes and dollars being on different scales,
        # mirroring the paper's use of normalised costs in the aggregate function.)
        insensitive = engine.top_k(query, 1, weights=[0.02, 0.98])
        assert insensitive.facility_ids() == [1]
