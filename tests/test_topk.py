"""Unit and integration tests for MCN top-k processing (known k)."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregates import MaxCost, WeightedSum
from repro.core.topk import MCNTopKSearch, cea_top_k, lsa_top_k
from repro.errors import QueryError
from repro.network import FacilitySet, InMemoryAccessor, NetworkLocation
from tests.helpers import exact_top_k, facility_vectors, random_mcn, random_query


@pytest.fixture
def accessor(tiny_graph, tiny_facilities) -> InMemoryAccessor:
    return InMemoryAccessor(tiny_graph, tiny_facilities)


class TestTinyGridTopK:
    def test_top_1_under_time_priority(self, accessor, tiny_graph, tiny_query):
        # Heavy weight on minutes: the highway facility (3 min) wins.
        result = lsa_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.9, 0.1)), 1)
        assert result.facility_ids() == [1]

    def test_top_1_under_price_priority(self, accessor, tiny_graph, tiny_query):
        # Heavy weight on dollars: the free-but-slower facility 0 wins.
        result = lsa_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.01, 0.99)), 1)
        assert result.facility_ids() == [0]

    def test_full_ranking_matches_brute_force(self, accessor, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        truth = exact_top_k(facility_vectors(tiny_graph, tiny_facilities, tiny_query), aggregate, 3)
        result = cea_top_k(accessor, tiny_graph, tiny_query, aggregate, 3)
        assert result.facility_ids() == [fid for fid, _score in truth]
        assert result.scores() == pytest.approx([score for _fid, score in truth])

    def test_scores_are_sorted(self, accessor, tiny_graph, tiny_query):
        result = lsa_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)), 3)
        assert result.scores() == sorted(result.scores())

    def test_k_larger_than_facility_count(self, accessor, tiny_graph, tiny_query):
        result = cea_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)), 10)
        assert len(result) == 3

    def test_invalid_k_rejected(self, accessor, tiny_graph, tiny_query):
        with pytest.raises(QueryError):
            lsa_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)), 0)

    def test_statistics_populated(self, accessor, tiny_graph, tiny_query):
        result = lsa_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)), 2)
        assert result.statistics.nn_retrievals > 0
        assert result.statistics.facilities_pinned >= 2
        assert result.statistics.io.adjacency_requests > 0

    def test_result_costs_are_complete_vectors(self, accessor, tiny_graph, tiny_query):
        result = cea_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)), 2)
        for item in result:
            assert len(item.costs) == 2
            assert all(isinstance(value, float) for value in item.costs)


class TestAgainstBruteForceOnWorkloads:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_lsa_and_cea_match_brute_force(self, small_workload, k):
        graph, facilities = small_workload.graph, small_workload.facilities
        rng = random.Random(k)
        aggregate = WeightedSum.random(graph.num_cost_types, rng)
        for query in small_workload.queries:
            truth = exact_top_k(facility_vectors(graph, facilities, query), aggregate, k)
            expected_scores = [round(score, 6) for _fid, score in truth]
            for runner in (lsa_top_k, cea_top_k):
                result = runner(InMemoryAccessor(graph, facilities), graph, query, aggregate, k)
                assert [round(score, 6) for score in result.scores()] == expected_scores

    def test_non_linear_monotone_aggregate(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        aggregate = MaxCost(tuple([1.0] * graph.num_cost_types))
        query = small_workload.queries[0]
        truth = exact_top_k(facility_vectors(graph, facilities, query), aggregate, 3)
        result = cea_top_k(InMemoryAccessor(graph, facilities), graph, query, aggregate, 3)
        assert [round(s, 6) for s in result.scores()] == [round(s, 6) for _f, s in truth]

    def test_top_1_belongs_to_skyline(self, small_workload):
        from repro.core.skyline import cea_skyline

        graph, facilities = small_workload.graph, small_workload.facilities
        query = small_workload.queries[1]
        skyline_ids = cea_skyline(InMemoryAccessor(graph, facilities), graph, query).facility_ids()
        rng = random.Random(99)
        for _ in range(5):
            aggregate = WeightedSum.random(graph.num_cost_types, rng)
            winner = cea_top_k(InMemoryAccessor(graph, facilities), graph, query, aggregate, 1)
            assert winner.facility_ids()[0] in skyline_ids

    def test_integer_cost_ties(self):
        aggregate = WeightedSum((0.5, 0.5))
        for seed in range(5):
            graph, facilities = random_mcn(
                num_nodes=25, num_edges=45, num_cost_types=2, num_facilities=12,
                seed=seed, integer_costs=True,
            )
            query = random_query(graph, seed=seed + 50)
            truth = exact_top_k(facility_vectors(graph, facilities, query), aggregate, 4)
            expected = [round(score, 6) for _fid, score in truth]
            result = cea_top_k(InMemoryAccessor(graph, facilities), graph, query, aggregate, 4)
            assert [round(score, 6) for score in result.scores()] == expected

    def test_growing_stage_stops_early(self, medium_workload):
        """Top-k must not explore the whole network when facilities are plentiful."""
        graph, facilities = medium_workload.graph, medium_workload.facilities
        accessor = InMemoryAccessor(graph, facilities)
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        MCNTopKSearch(accessor, graph, medium_workload.queries[0], aggregate, 2).run()
        assert accessor.statistics.adjacency_requests < graph.num_nodes * graph.num_cost_types / 2


class TestTopKEdgeCases:
    def test_no_facilities(self, tiny_graph):
        accessor = InMemoryAccessor(tiny_graph, FacilitySet(tiny_graph))
        result = lsa_top_k(accessor, tiny_graph, NetworkLocation.at_node(0), WeightedSum((0.5, 0.5)), 3)
        assert len(result) == 0

    def test_single_facility(self, tiny_graph):
        facilities = FacilitySet(tiny_graph)
        facilities.add_on_edge(0, 0, 1.0)
        accessor = InMemoryAccessor(tiny_graph, facilities)
        result = cea_top_k(accessor, tiny_graph, NetworkLocation.at_node(4), WeightedSum((0.5, 0.5)), 3)
        assert result.facility_ids() == [0]

    def test_query_at_facility_location_scores_zero(self, tiny_graph, tiny_facilities):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        highway = tiny_graph.edge_between(4, 5)
        query = NetworkLocation.on_edge(highway.edge_id, 1.0)
        result = lsa_top_k(accessor, tiny_graph, query, WeightedSum((0.5, 0.5)), 1)
        assert result.scores()[0] == pytest.approx(0.0)

    def test_ties_in_aggregate_cost_resolved_deterministically(self, tiny_graph):
        facilities = FacilitySet(tiny_graph)
        highway = tiny_graph.edge_between(4, 5)
        facilities.add_on_edge(0, highway.edge_id, 1.0)
        facilities.add_on_edge(1, highway.edge_id, 1.0)
        accessor = InMemoryAccessor(tiny_graph, facilities)
        result = cea_top_k(accessor, tiny_graph, NetworkLocation.at_node(3), WeightedSum((0.5, 0.5)), 1)
        assert len(result) == 1
        assert result.facility_ids()[0] in {0, 1}

    def test_share_accesses_reduces_requests(self, medium_workload):
        graph, facilities = medium_workload.graph, medium_workload.facilities
        query = medium_workload.queries[1]
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        lsa_accessor = InMemoryAccessor(graph, facilities)
        MCNTopKSearch(lsa_accessor, graph, query, aggregate, 4, share_accesses=False).run()
        cea_accessor = InMemoryAccessor(graph, facilities)
        MCNTopKSearch(cea_accessor, graph, query, aggregate, 4, share_accesses=True).run()
        assert (
            cea_accessor.statistics.adjacency_requests
            <= lsa_accessor.statistics.adjacency_requests
        )
