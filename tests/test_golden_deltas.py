"""Golden delta-stream fixtures: emitted deltas and path counters pinned forever.

Each ``tests/fixtures/delta_stream_*.json`` file stores a deterministic
workload spec, an update-stream spec, the subscription trace, the generated
stream itself and — per tick — every emitted
:class:`~repro.monitor.DeltaReport` plus the maintenance-path counters
(incremental vs fallback-recompute).  Replaying them here means a future
change cannot silently reroute updates down a different maintenance path or
alter the emitted deltas, even when the final answers stay correct; an
intentional change must re-run ``tests/fixtures/regenerate.py`` and commit
the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.policy import ExecutionPolicy
from repro.core.vector import NUMPY_AVAILABLE
from repro.datagen import (
    make_update_stream,
    make_workload,
    update_stream_spec_from_payload,
    workload_spec_from_payload,
)
from repro.monitor import (
    MonitoringService,
    stream_from_payload,
    stream_to_payload,
    tick_report_to_payload,
)
from repro.network.facilities import FacilitySet
from repro.service.requests import decode_requests

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
FIXTURE_PATHS = sorted(FIXTURES_DIR.glob("delta_stream_*.json"))


def load_fixture(path: Path) -> dict:
    return json.loads(path.read_text())


def test_delta_fixtures_are_checked_in():
    assert len(FIXTURE_PATHS) >= 2, "delta fixtures missing; run tests/fixtures/regenerate.py"


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
class TestGoldenDeltaStreams:
    def build(self, fixture: dict, policy: ExecutionPolicy | None = None):
        workload = make_workload(workload_spec_from_payload(fixture["workload"]))
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        if policy is None:
            service = MonitoringService(workload.graph, facilities)
        else:
            service = MonitoringService(workload.graph, facilities, policy=policy)
        requests = decode_requests(fixture["requests"])
        sids = [service.subscribe(request) for request in requests]
        return workload, service, sids

    def test_stream_generation_is_pinned(self, path):
        """The generator must keep producing the exact stream the fixture stores."""
        fixture = load_fixture(path)
        workload, _service, sids = self.build(fixture)
        stream = make_update_stream(
            workload.graph,
            workload.facilities,
            update_stream_spec_from_payload(fixture["stream_spec"]),
            subscription_ids=sids,
        )
        assert stream_to_payload(stream) == fixture["stream"]

    def test_replay_emits_pinned_deltas_and_counters(self, path):
        """Every tick's deltas AND its incremental-vs-fallback split must match.

        A maintenance-path regression (an insert suddenly falling back, a
        non-member delete triggering a recompute) fails here even when the
        final answers are still correct.
        """
        fixture = load_fixture(path)
        _workload, service, _sids = self.build(fixture)
        stream = stream_from_payload(fixture["stream"])
        reports = service.run(stream)
        expected_ticks = fixture["expected"]["ticks"]
        assert len(reports) == len(expected_ticks)
        for report, expected in zip(reports, expected_ticks):
            assert tick_report_to_payload(report) == expected

    @pytest.mark.parametrize(
        "vector",
        [
            pytest.param(
                "on",
                id="vectorised",
                marks=pytest.mark.skipif(
                    not NUMPY_AVAILABLE, reason="numpy not importable"
                ),
            ),
            pytest.param("off", id="fallback"),
        ],
    )
    def test_kernel_selection_replay_emits_pinned_deltas(self, path, vector):
        """Both kernel selections reproduce every pinned tick payload exactly.

        The monitor's insertion pricing and end-of-tick fallback passes run
        on whichever kernel the policy selects; neither selection may move a
        single delta, counter or maintenance-path split away from what the
        fixture recorded — independent of the ``REPRO_VECTOR`` environment.
        """
        fixture = load_fixture(path)
        policy = ExecutionPolicy(vector=vector)
        _workload, service, _sids = self.build(fixture, policy)
        reports = service.run(stream_from_payload(fixture["stream"]))
        expected_ticks = fixture["expected"]["ticks"]
        assert len(reports) == len(expected_ticks)
        for report, expected in zip(reports, expected_ticks):
            assert tick_report_to_payload(report) == expected

    def test_cumulative_counters_are_pinned(self, path):
        fixture = load_fixture(path)
        _workload, service, _sids = self.build(fixture)
        service.run(stream_from_payload(fixture["stream"]))
        counters = service.statistics
        expected = fixture["expected"]["final_counters"]
        assert counters.insertions == expected["insertions"]
        assert counters.deletions == expected["deletions"]
        assert counters.incremental_updates == expected["incremental_updates"]
        assert counters.recomputations == expected["recomputations"]
        assert counters.query_moves == expected["query_moves"]
