"""Test helpers: brute-force oracles and tiny data builders."""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.network import (
    CostVector,
    FacilitySet,
    InMemoryAccessor,
    MultiCostGraph,
    NetworkLocation,
    all_facility_cost_vectors,
    dominates,
)


def exact_skyline(vectors: Mapping[int, Sequence[float]]) -> set[int]:
    """Brute-force skyline over fully known cost vectors (the formal definition)."""
    result = set()
    for key, vector in vectors.items():
        vector = tuple(vector)
        if not any(
            dominates(tuple(other), vector) for other_key, other in vectors.items() if other_key != key
        ):
            result.add(key)
    return result


def exact_top_k(
    vectors: Mapping[int, Sequence[float]], aggregate, k: int
) -> list[tuple[int, float]]:
    """Brute-force top-k scores over fully known cost vectors."""
    scored = sorted(
        ((key, aggregate(tuple(vector))) for key, vector in vectors.items()),
        key=lambda item: (item[1], item[0]),
    )
    return scored[:k]


def facility_vectors(
    graph: MultiCostGraph, facilities: FacilitySet, query: NetworkLocation
) -> dict[int, tuple[float, ...]]:
    """Ground-truth cost vectors computed with plain Dijkstra (independent code path)."""
    return {
        fid: tuple(vector)
        for fid, vector in all_facility_cost_vectors(graph, facilities, query).items()
    }


def random_mcn(
    *,
    num_nodes: int,
    num_edges: int,
    num_cost_types: int,
    num_facilities: int,
    seed: int,
    integer_costs: bool = False,
) -> tuple[MultiCostGraph, FacilitySet]:
    """A random connected multigraph-free MCN with facilities, for property tests.

    ``integer_costs=True`` draws small integer edge costs, which makes exact
    cost ties common — the stress case for the tie-handling refinements.
    """
    rng = random.Random(seed)
    num_nodes = max(num_nodes, 2)
    graph = MultiCostGraph(num_cost_types)
    for node_id in range(num_nodes):
        graph.add_node(node_id, rng.uniform(0, 100), rng.uniform(0, 100))

    def draw_costs() -> list[float]:
        if integer_costs:
            return [float(rng.randint(1, 4)) for _ in range(num_cost_types)]
        return [rng.uniform(0.5, 10.0) for _ in range(num_cost_types)]

    # Random spanning tree first so the graph is connected.
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    for index in range(1, num_nodes):
        u = nodes[index]
        v = nodes[rng.randrange(index)]
        graph.add_edge(u, v, draw_costs(), length=rng.uniform(1.0, 5.0))
    attempts = 0
    while graph.num_edges < num_edges and attempts < 20 * num_edges:
        attempts += 1
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u == v or graph.edge_between(u, v) is not None:
            continue
        graph.add_edge(u, v, draw_costs(), length=rng.uniform(1.0, 5.0))

    facilities = FacilitySet(graph)
    edges = list(graph.edges())
    for facility_id in range(num_facilities):
        edge = rng.choice(edges)
        offset = rng.uniform(0.0, edge.length)
        if integer_costs:
            offset = float(rng.choice([0.0, edge.length / 2, edge.length]))
        facilities.add_on_edge(facility_id, edge.edge_id, offset)
    return graph, facilities


def random_query(graph: MultiCostGraph, seed: int) -> NetworkLocation:
    """A random query location (node or on-edge) on ``graph``."""
    rng = random.Random(seed)
    if rng.random() < 0.5:
        return NetworkLocation.at_node(rng.choice(list(graph.node_ids())))
    edge = rng.choice(list(graph.edges()))
    return NetworkLocation.on_edge(edge.edge_id, rng.uniform(0.0, edge.length))


def accessor_for(graph: MultiCostGraph, facilities: FacilitySet) -> InMemoryAccessor:
    return InMemoryAccessor(graph, facilities)
