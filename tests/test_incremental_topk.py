"""Tests for the incremental (k-less) top-k iterator."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregates import WeightedSum
from repro.core.incremental import IncrementalTopK
from repro.network import FacilitySet, InMemoryAccessor, NetworkLocation
from tests.helpers import exact_top_k, facility_vectors


class TestTinyGridIncremental:
    def test_enumerates_all_facilities_in_score_order(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        iterator = IncrementalTopK(accessor, tiny_graph, tiny_query, aggregate)
        results = list(iterator)
        truth = exact_top_k(
            facility_vectors(tiny_graph, tiny_facilities, tiny_query), aggregate, len(tiny_facilities)
        )
        assert [item.facility_id for item in results] == [fid for fid, _ in truth]
        assert [item.score for item in results] == pytest.approx([score for _, score in truth])

    def test_scores_non_decreasing(self, tiny_graph, tiny_facilities, tiny_query):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        iterator = IncrementalTopK(accessor, tiny_graph, tiny_query, WeightedSum((0.8, 0.2)))
        scores = [item.score for item in iterator]
        assert scores == sorted(scores)

    def test_stop_iteration_after_exhaustion(self, tiny_graph, tiny_facilities, tiny_query):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        iterator = IncrementalTopK(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)))
        list(iterator)
        with pytest.raises(StopIteration):
            next(iterator)

    def test_take_helper(self, tiny_graph, tiny_facilities, tiny_query):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        iterator = IncrementalTopK(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)))
        first_two = iterator.take(2)
        assert len(first_two) == 2
        rest = iterator.take(10)
        assert len(rest) == 1  # only 3 facilities exist in total

    def test_empty_facility_set(self, tiny_graph):
        accessor = InMemoryAccessor(tiny_graph, FacilitySet(tiny_graph))
        iterator = IncrementalTopK(accessor, tiny_graph, NetworkLocation.at_node(0), WeightedSum((0.5, 0.5)))
        assert iterator.take(5) == []

    def test_statistics_accumulate_across_calls(self, tiny_graph, tiny_facilities, tiny_query):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        iterator = IncrementalTopK(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)))
        next(iterator)
        first_requests = iterator.statistics.io.adjacency_requests
        next(iterator)
        assert iterator.statistics.io.adjacency_requests >= first_requests
        assert iterator.statistics.nn_retrievals > 0


class TestIncrementalAgainstKnownK:
    """The first k results of the incremental iterator must equal the top-k result."""

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_prefix_matches_topk(self, small_workload, k):
        from repro.core.topk import cea_top_k

        graph, facilities = small_workload.graph, small_workload.facilities
        aggregate = WeightedSum.random(graph.num_cost_types, random.Random(k))
        for query in small_workload.queries[:2]:
            expected = cea_top_k(InMemoryAccessor(graph, facilities), graph, query, aggregate, k)
            iterator = IncrementalTopK(
                InMemoryAccessor(graph, facilities), graph, query, aggregate
            )
            observed = iterator.take(k)
            assert [round(item.score, 6) for item in observed] == [
                round(score, 6) for score in expected.scores()
            ]

    def test_incremental_is_lazy(self, medium_workload):
        """Retrieving a handful of results must not pay for a full enumeration."""
        graph, facilities = medium_workload.graph, medium_workload.facilities
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        accessor = InMemoryAccessor(graph, facilities)
        iterator = IncrementalTopK(accessor, graph, medium_workload.queries[0], aggregate)
        iterator.take(3)
        partial_requests = accessor.statistics.adjacency_requests

        full_accessor = InMemoryAccessor(graph, facilities)
        full_iterator = IncrementalTopK(full_accessor, graph, medium_workload.queries[0], aggregate)
        list(full_iterator)
        assert partial_requests < full_accessor.statistics.adjacency_requests

    def test_full_enumeration_matches_brute_force(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        query = small_workload.queries[3]
        truth = exact_top_k(
            facility_vectors(graph, facilities, query), aggregate, len(facilities)
        )
        iterator = IncrementalTopK(InMemoryAccessor(graph, facilities), graph, query, aggregate)
        observed = list(iterator)
        assert len(observed) == len(truth)
        assert [round(item.score, 6) for item in observed] == [
            round(score, 6) for _fid, score in truth
        ]

    def test_share_accesses_flag(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        query = small_workload.queries[0]
        shared = InMemoryAccessor(graph, facilities)
        IncrementalTopK(shared, graph, query, aggregate, share_accesses=True).take(5)
        independent = InMemoryAccessor(graph, facilities)
        IncrementalTopK(independent, graph, query, aggregate, share_accesses=False).take(5)
        assert shared.statistics.adjacency_requests <= independent.statistics.adjacency_requests
