"""Golden regression fixtures: answers and I/O accounting pinned forever.

Each ``tests/fixtures/golden_*.json`` file stores a deterministic workload
spec, a serialized request trace, every query's exact answer and the
sequential batch's page-read/buffer-hit totals.  Replaying them here means
future performance work cannot silently change answers or regress the I/O
accounting — an intentional change must re-run
``tests/fixtures/regenerate.py`` and commit the resulting diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.engine import MCNQueryEngine
from repro.core.vector import NUMPY_AVAILABLE
from repro.datagen import make_workload, workload_spec_from_payload
from repro.parallel import ShardedQueryService
from repro.service import QueryService, SkylineRequest
from repro.service.requests import decode_requests, encode_requests
from repro.storage.scheme import NetworkStorage

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
FIXTURE_PATHS = sorted(FIXTURES_DIR.glob("golden_*.json"))


def load_fixture(path: Path) -> dict:
    return json.loads(path.read_text())


def build_engine(
    fixture: dict, *, compiled: bool = False, vector: bool | None = None
) -> MCNQueryEngine:
    workload = make_workload(workload_spec_from_payload(fixture["workload"]))
    storage = NetworkStorage.build(
        workload.graph,
        workload.facilities,
        page_size=fixture["page_size"],
        buffer_fraction=fixture["buffer_fraction"],
    )
    return MCNQueryEngine(
        workload.graph,
        workload.facilities,
        storage=storage,
        compiled=compiled,
        vector=vector,
    )


def observed_payload(request, result) -> dict:
    if isinstance(request, SkylineRequest):
        return {
            "type": "skyline",
            "facilities": [[f.facility_id, list(f.costs)] for f in result],
        }
    return {"type": "topk", "facilities": [[f.facility_id, f.score] for f in result]}


def assert_results_match(expected: dict, observed: dict) -> None:
    assert observed["type"] == expected["type"]
    assert len(observed["facilities"]) == len(expected["facilities"])
    for (exp_id, exp_costs), (obs_id, obs_costs) in zip(
        expected["facilities"], observed["facilities"]
    ):
        assert obs_id == exp_id
        if expected["type"] == "skyline":
            for exp_value, obs_value in zip(exp_costs, obs_costs):
                if exp_value is None:
                    assert obs_value is None
                else:
                    assert obs_value == pytest.approx(exp_value, abs=1e-9)
        else:
            assert obs_costs == pytest.approx(exp_costs, abs=1e-9)


def test_fixtures_are_checked_in():
    assert len(FIXTURE_PATHS) >= 2, "golden fixtures missing; run tests/fixtures/regenerate.py"


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
class TestGoldenReplay:
    def test_sequential_replay_matches_answers_and_io(self, path):
        fixture = load_fixture(path)
        engine = build_engine(fixture)
        requests = decode_requests(fixture["requests"])
        report = QueryService(engine).run_batch(requests)
        expected = fixture["expected"]
        assert len(report.outcomes) == len(expected["results"])
        for outcome, expected_result in zip(report.outcomes, expected["results"]):
            assert_results_match(
                expected_result, observed_payload(outcome.request, outcome.result)
            )
        # I/O accounting is part of the contract: fewer reads is a conscious
        # improvement (regenerate the fixture), more reads is a regression.
        assert report.io.page_reads == expected["page_reads"]
        assert report.io.buffer_hits == expected["buffer_hits"]

    def test_sharded_replay_matches_answers(self, path):
        fixture = load_fixture(path)
        engine = build_engine(fixture)
        requests = decode_requests(fixture["requests"])
        report = ShardedQueryService(
            engine, workers=2, routing="locality", executor="serial"
        ).run_batch(requests)
        for outcome, expected_result in zip(report.outcomes, fixture["expected"]["results"]):
            assert_results_match(
                expected_result, observed_payload(outcome.request, outcome.result)
            )

    def test_request_payloads_round_trip(self, path):
        fixture = load_fixture(path)
        requests = decode_requests(fixture["requests"])
        assert encode_requests(requests) == fixture["requests"]

    def test_fast_path_replay_is_bit_identical(self, path):
        """The compiled-kernel fast path must reproduce every golden fixture
        exactly — answers AND the pinned page-read/buffer-hit totals."""
        fixture = load_fixture(path)
        engine = build_engine(fixture, compiled=True)
        assert engine.compiled_graph is not None and engine.compiled_graph.has_page_plans
        requests = decode_requests(fixture["requests"])
        report = QueryService(engine).run_batch(requests)
        expected = fixture["expected"]
        for outcome, expected_result in zip(report.outcomes, expected["results"]):
            assert_results_match(
                expected_result, observed_payload(outcome.request, outcome.result)
            )
        assert report.io.page_reads == expected["page_reads"]
        assert report.io.buffer_hits == expected["buffer_hits"]

    @pytest.mark.parametrize(
        "vector",
        [
            pytest.param(
                True,
                id="vectorised",
                marks=pytest.mark.skipif(
                    not NUMPY_AVAILABLE, reason="numpy not importable"
                ),
            ),
            pytest.param(False, id="fallback"),
        ],
    )
    def test_kernel_selection_replay_is_bit_identical(self, path, vector):
        """Both kernel selections reproduce every golden fixture exactly.

        Pinned independently of the ``REPRO_VECTOR`` environment: the
        vectorised kernel and the pure-python fallback must each hit the
        same answers AND the same page-read/buffer-hit totals the fixture
        recorded for the legacy path.
        """
        fixture = load_fixture(path)
        engine = build_engine(fixture, compiled=True, vector=vector)
        assert engine.vector_enabled is vector
        requests = decode_requests(fixture["requests"])
        report = QueryService(engine).run_batch(requests)
        expected = fixture["expected"]
        for outcome, expected_result in zip(report.outcomes, expected["results"]):
            assert_results_match(
                expected_result, observed_payload(outcome.request, outcome.result)
            )
        assert report.io.page_reads == expected["page_reads"]
        assert report.io.buffer_hits == expected["buffer_hits"]
