"""Public-API snapshot: accidental surface breaks must fail CI.

Pins ``repro.api.__all__`` plus the signatures of :class:`Session`, the
:class:`ExecutionPolicy` schema and the response envelopes.  A deliberate
API change updates the pinned constants here — in the same commit, visibly.
"""

from __future__ import annotations

import dataclasses
import inspect

import pytest

import repro
import repro.api as api
from repro.api import ExecutionPolicy, Session
from repro.api.session import BatchResponse, MonitorHandle, Response, TickResponse

API_ALL = [
    "ALGORITHMS",
    "BatchResponse",
    "COMPILED_ENV_VAR",
    "COMPILED_MODES",
    "DEFAULT_POLICY",
    "DEFAULT_TRACKED_QUANTILES",
    "EXECUTORS",
    "ExecutionPolicy",
    "LatencyRecorder",
    "MonitorHandle",
    "P2Quantile",
    "RESIDENCIES",
    "ROUTINGS",
    "Response",
    "RollingLatencyStats",
    "Session",
    "TickResponse",
    "VECTOR_ENV_VAR",
    "VECTOR_MODES",
    "compiled_env_default",
    "numpy_available",
    "policy_from_payload",
    "policy_to_payload",
    "resolve_compiled",
    "resolve_vector",
    "vector_env_default",
]

SESSION_SIGNATURES = {
    "__init__": (
        "(self, graph: 'MultiCostGraph | None' = None, "
        "facilities: 'FacilitySet | None' = None, *, "
        "storage: 'NetworkStorage | None' = None, "
        "accessor: 'GraphAccessor | None' = None, "
        "policy: 'ExecutionPolicy | None' = None, "
        "dataset_path: 'str | None' = None, "
        "verify_checksum: 'bool' = True, "
        "profiles: 'dict[str, object] | None' = None)"
    ),
    "query": (
        "(self, request: 'QueryRequest', *, policy: 'ExecutionPolicy | None' = None)"
        " -> 'Response'"
    ),
    "skyline": (
        "(self, location: 'NetworkLocation', *, policy: 'ExecutionPolicy | None' = None)"
        " -> 'Response'"
    ),
    "top_k": (
        "(self, location: 'NetworkLocation', k: 'int', *, "
        "weights: 'Sequence[float] | None' = None, "
        "aggregate: 'AggregateFunction | None' = None, "
        "policy: 'ExecutionPolicy | None' = None) -> 'Response'"
    ),
    "run_batch": (
        "(self, requests: 'Sequence[QueryRequest]', *, "
        "policy: 'ExecutionPolicy | None' = None) -> 'BatchResponse'"
    ),
    "monitor": (
        "(self, requests: 'Sequence[QueryRequest]', *, "
        "policy: 'ExecutionPolicy | None' = None) -> 'MonitorHandle'"
    ),
    "sweep": (
        "(self, request: 'SweepRequest', *, policy: 'ExecutionPolicy | None' = None)"
        " -> 'SweepResponse'"
    ),
    "close": "(self) -> 'None'",
    "invalidate_result_caches": "(self) -> 'int'",
    "engine_for": "(self, policy: 'ExecutionPolicy | None' = None) -> 'MCNQueryEngine'",
    "storage_for": (
        "(self, policy: 'ExecutionPolicy | None' = None) -> 'NetworkStorage | None'"
    ),
}

POLICY_SCHEMA = [
    ("algorithm", "cea"),
    ("residency", "memory"),
    ("dataset_path", None),
    ("compiled", "auto"),
    ("vector", "auto"),
    ("page_size", 4096),
    ("buffer_fraction", 0.01),
    ("workers", 1),
    ("routing", "round_robin"),
    ("executor", "process"),
    ("memoize_results", True),
    ("harvest_settled", True),
    ("max_cached_entries", None),
    ("shard_fallback_threshold", 4),
    ("temporal", "off"),
    ("profile_source", None),
    ("temporal_quantum", 0.25),
    ("temporal_cache_size", 8),
]

RESPONSE_FIELDS = [
    "request",
    "result",
    "io",
    "elapsed_seconds",
    "policy",
    "served_from_memo",
    "ticket",
]

BATCH_RESPONSE_FIELDS = [
    "responses",
    "elapsed_seconds",
    "io",
    "cache",
    "policy",
    "shard_sizes",
    "shard_io",
]

TICK_RESPONSE_FIELDS = [
    "index",
    "updates",
    "deltas",
    "counters",
    "fallback_subscriptions",
    "sharded",
    "elapsed_seconds",
    "io",
    "policy",
]


class TestApiSurface:
    def test_api_all_pinned(self):
        assert list(api.__all__) == API_ALL

    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None
        assert sorted(api.__all__) == [n for n in dir(api) if not n.startswith("_")]

    @pytest.fixture(params=sorted(SESSION_SIGNATURES))
    def method_name(self, request):
        return request.param

    def test_session_signatures_pinned(self, method_name):
        actual = str(inspect.signature(getattr(Session, method_name)))
        assert actual == SESSION_SIGNATURES[method_name], method_name

    def test_policy_schema_pinned(self):
        actual = [
            (field.name, field.default)
            for field in dataclasses.fields(ExecutionPolicy)
        ]
        assert actual == POLICY_SCHEMA

    def test_response_envelopes_pinned(self):
        assert [f.name for f in dataclasses.fields(Response)] == RESPONSE_FIELDS
        assert (
            [f.name for f in dataclasses.fields(BatchResponse)]
            == BATCH_RESPONSE_FIELDS
        )
        assert (
            [f.name for f in dataclasses.fields(TickResponse)] == TICK_RESPONSE_FIELDS
        )

    def test_monitor_handle_surface(self):
        public = sorted(
            name
            for name in dir(MonitorHandle)
            if not name.startswith("_")
        )
        assert public == [
            "maintainer_of",
            "policy",
            "result_signature",
            "run",
            "service",
            "statistics",
            "subscription_ids",
            "tick",
            "unsubscribe",
        ]

    def test_top_level_exports_include_the_facade(self):
        for name in (
            "Session",
            "ExecutionPolicy",
            "Response",
            "BatchResponse",
            "TickResponse",
            "MonitorHandle",
            "PolicyError",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
