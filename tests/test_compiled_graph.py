"""Structure tests of the CSR snapshot (:mod:`repro.network.compiled`).

The differential suite proves the kernel behaves like the legacy expansion;
these tests pin the snapshot itself: CSR columns mirror the accessor's
record order, page plans replay the exact buffered reads a live request
performs, and the charge-layer factory rejects mismatched pairings.
"""

from __future__ import annotations

import random

import pytest

from repro.api import ExecutionPolicy
from repro.core.engine import MCNQueryEngine
from repro.core.kernel import (
    DirectChargeLayer,
    FetchOnceChargeLayer,
    ForwardingLayer,
    make_kernel_data_layer,
)
from repro.datagen import (
    UpdateStreamSpec,
    WorkloadSpec,
    make_update_stream,
    make_workload,
)
from repro.errors import QueryError
from repro.monitor import MonitoringService
from repro.network.accessor import InMemoryAccessor
from repro.network.compiled import CompiledGraph
from repro.network.facilities import FacilitySet
from repro.service import (
    CrossQueryExpansionCache,
    SharedCacheChargeLayer,
    SkylineRequest,
)
from repro.storage.scheme import NetworkStorage


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        WorkloadSpec(num_nodes=160, num_facilities=45, num_cost_types=3, num_queries=2, seed=13)
    )


@pytest.fixture(scope="module")
def accessor(workload):
    return InMemoryAccessor(workload.graph, workload.facilities)


@pytest.fixture(scope="module")
def compiled(accessor):
    return CompiledGraph.from_accessor(accessor)


class TestTopologyColumns:
    def test_arcs_mirror_accessor_adjacency_order(self, workload, compiled):
        probe = InMemoryAccessor(workload.graph, workload.facilities)
        for node_id in workload.graph.node_ids():
            node_idx = compiled.node_index[node_id]
            start = compiled.arc_indptr[node_idx]
            end = compiled.arc_indptr[node_idx + 1]
            records = probe.adjacency(node_id)
            assert end - start == len(records)
            for arc, record in zip(range(start, end), records):
                assert compiled.node_ids[compiled.arc_neighbor[arc]] == record.neighbor
                assert compiled.edge_ids[compiled.arc_edge[arc]] == record.edge_id
                for cost_index in range(compiled.num_cost_types):
                    assert compiled.arc_costs[cost_index][arc] == record.costs[cost_index]
                edge = workload.graph.edge(record.edge_id)
                assert bool(compiled.arc_forward[arc]) == (node_id == edge.u)

    def test_facility_buckets_mirror_edge_facilities(self, workload, compiled):
        probe = InMemoryAccessor(workload.graph, workload.facilities)
        for edge in workload.graph.edges():
            records = probe.edge_facilities(edge.edge_id)
            bucket = compiled.edge_facility_records(compiled.edge_index[edge.edge_id])
            assert list(bucket) == records

    def test_hot_facility_deltas_match_legacy_arithmetic(self, workload, compiled):
        # delta must be exactly edge_cost * (offset / length) — the legacy
        # expansion's expression, evaluated at build time.
        for cost_index in range(compiled.num_cost_types):
            table = compiled.hot_facilities(cost_index)
            for edge in workload.graph.edges():
                edge_idx = compiled.edge_index[edge.edge_id]
                for fid, delta, record in table[edge_idx * 2 + 1]:
                    fraction = record.offset / edge.length if edge.length > 0 else 0.0
                    assert delta == edge.costs.values[cost_index] * fraction
                    assert fid == record.facility_id

    def test_memoryviews_and_describe(self, compiled, workload):
        views = compiled.memoryview_columns()
        assert len(views["node_ids"]) == workload.graph.num_nodes
        assert len(views["fac_ids"]) == len(workload.facilities)
        summary = compiled.describe()
        assert summary["nodes"] == workload.graph.num_nodes
        assert summary["facilities"] == len(workload.facilities)
        assert summary["page_plans"] is False


class TestPagePlans:
    def test_plan_replay_equals_live_request_io(self, workload):
        storage = NetworkStorage.build(
            workload.graph, workload.facilities, page_size=1024, buffer_fraction=0.01
        )
        compiled = CompiledGraph.from_accessor(storage)
        assert compiled.has_page_plans
        # Two fresh snapshot views: one serves real requests, the other
        # replays the plans.  Buffer statistics must agree exactly.
        live = storage.snapshot_view()
        replay = storage.snapshot_view()
        some_nodes = list(workload.graph.node_ids())[:25]
        some_edges = [edge.edge_id for edge in workload.graph.edges()][:25]
        some_facilities = [facility.facility_id for facility in workload.facilities][:10]
        for node_id in some_nodes:
            live.adjacency(node_id)
            for page_id in compiled.adjacency_plans[compiled.node_index[node_id]]:
                replay.buffer.read(page_id)
        for edge_id in some_edges:
            live.edge_facilities(edge_id)
            for page_id in compiled.facility_plans[compiled.edge_index[edge_id]]:
                replay.buffer.read(page_id)
        for facility_id in some_facilities:
            live.facility_edge(facility_id)
            for page_id in compiled.facility_tree_plans[facility_id]:
                replay.buffer.read(page_id)
        assert replay.buffer.statistics.requests == live.buffer.statistics.requests
        assert replay.buffer.statistics.hits == live.buffer.statistics.hits
        assert replay.buffer.statistics.misses == live.buffer.statistics.misses

    def test_compiling_does_not_touch_counters(self, workload):
        storage = NetworkStorage.build(workload.graph, workload.facilities, page_size=1024)
        before_reads = storage.disk.statistics.page_reads
        before_stats = storage.statistics.snapshot()
        CompiledGraph.from_accessor(storage)
        assert storage.disk.statistics.page_reads == before_reads
        after = storage.statistics
        assert after.adjacency_requests == before_stats.adjacency_requests
        assert after.page_reads == before_stats.page_reads
        assert after.buffer_hits == before_stats.buffer_hits


class TestLayerFactory:
    def test_layer_kinds(self, compiled, accessor):
        assert isinstance(
            make_kernel_data_layer(compiled, target=accessor), DirectChargeLayer
        )
        assert isinstance(
            make_kernel_data_layer(compiled, target=accessor, fetch_once=True),
            FetchOnceChargeLayer,
        )
        # The cross-query cache offers its own charge layer (no record
        # materialisation through the accessor chain)...
        cache = CrossQueryExpansionCache(accessor)
        assert isinstance(
            make_kernel_data_layer(compiled, target=accessor, external=cache),
            SharedCacheChargeLayer,
        )
        # ...while a plain external accessor still gets verbatim forwarding.
        assert isinstance(
            make_kernel_data_layer(compiled, target=accessor, external=accessor),
            ForwardingLayer,
        )

    def test_mismatched_storage_rejected(self, workload, compiled, accessor):
        storage = NetworkStorage.build(workload.graph, workload.facilities, page_size=1024)
        with pytest.raises(QueryError):
            make_kernel_data_layer(compiled, target=storage)
        disk_compiled = CompiledGraph.from_accessor(storage)
        with pytest.raises(QueryError):
            make_kernel_data_layer(disk_compiled, target=accessor)
        other = NetworkStorage.build(workload.graph, workload.facilities, page_size=1024)
        with pytest.raises(QueryError):
            make_kernel_data_layer(disk_compiled, target=other)

    def test_unsupported_source_rejected(self, accessor):
        cache = CrossQueryExpansionCache(accessor)
        with pytest.raises(QueryError):
            CompiledGraph.from_accessor(cache)

    def test_engine_rejects_foreign_snapshot(self, workload, compiled):
        other_facilities = FacilitySet(workload.graph, iter(workload.facilities))
        with pytest.raises(QueryError):
            MCNQueryEngine(workload.graph, other_facilities, compiled=compiled)
        # Same graph AND same facility set: adopted fine.
        engine = MCNQueryEngine(workload.graph, workload.facilities, compiled=compiled)
        assert engine.compiled_graph is compiled


class TestFreshnessGuards:
    def test_topology_change_is_rejected(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=60, num_facilities=15, num_cost_types=2, num_queries=1, seed=3)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        compiled = CompiledGraph(workload.graph, facilities)
        nodes = list(workload.graph.node_ids())
        workload.graph.add_node(max(nodes) + 1)
        with pytest.raises(QueryError):
            compiled.ensure_fresh()

    def test_changelog_overflow_falls_back_to_full_rebuild(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=60, num_facilities=15, num_cost_types=2, num_queries=1, seed=4)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        compiled = CompiledGraph(workload.graph, facilities)
        edge_id = next(iter(workload.graph.edges())).edge_id
        # Blow straight past the bounded changelog.
        for index in range(1200):
            facilities.add_on_edge(10_000 + index, edge_id, offset=0.0)
            facilities.remove(10_000 + index)
        assert facilities.changed_facilities_since(compiled.facilities_revision) is None
        compiled.ensure_fresh()
        rebuilt = CompiledGraph(workload.graph, facilities)
        assert compiled.facility_edge_of == rebuilt.facility_edge_of
        assert compiled.hot_facilities(0) == rebuilt.hot_facilities(0)

    def test_overflow_rebuild_refreshes_every_stale_edge_bucket(self):
        # Regression: the bounded changelog can overflow while mutations are
        # scattered over MANY edges.  The full-refresh fallback must then
        # leave every edge bucket (and both hot tables) identical to a
        # from-scratch build — not just the buckets a partial log would have
        # named — and queries over the refreshed snapshot must match a fresh
        # one in both answers and I/O counters.
        workload = make_workload(
            WorkloadSpec(
                num_nodes=120, num_facilities=40, num_cost_types=2, num_queries=3, seed=9
            )
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        compiled = CompiledGraph(workload.graph, facilities)
        rng = random.Random(9)
        edge_ids = [edge.edge_id for edge in workload.graph.edges()]
        live: list[int] = []
        next_id = 50_000
        for _ in range(1100):
            if live and rng.random() < 0.45:
                facilities.remove(live.pop(rng.randrange(len(live))))
            else:
                edge = workload.graph.edge(rng.choice(edge_ids))
                facilities.add_on_edge(next_id, edge.edge_id, offset=0.5 * edge.length)
                live.append(next_id)
                next_id += 1
        assert facilities.changed_facilities_since(compiled.facilities_revision) is None
        compiled.ensure_fresh()
        fresh = CompiledGraph(workload.graph, facilities)
        assert compiled._edge_records == fresh._edge_records
        assert compiled.facility_edge_of == fresh.facility_edge_of
        for cost_index in range(workload.graph.num_cost_types):
            assert compiled.hot_facilities(cost_index) == fresh.hot_facilities(cost_index)
        assert compiled.hot_facility_node_flags() == fresh.hot_facility_node_flags()
        stale_engine = MCNQueryEngine(workload.graph, facilities, compiled=compiled)
        fresh_engine = MCNQueryEngine(workload.graph, facilities, compiled=fresh)
        for query in workload.queries:
            got = stale_engine.skyline(query)
            want = fresh_engine.skyline(query)
            assert got.facility_ids() == want.facility_ids()
            assert got.statistics.io == want.statistics.io

    def test_overflow_mid_monitor_tick_matches_uncompiled_service(self):
        # A single monitoring tick larger than the changelog bound drives the
        # compiled path through the overflow fallback mid-tick.  Results must
        # stay identical to the uncompiled service, and the snapshot left
        # behind must equal a from-scratch compile of the mutated set.
        workload = make_workload(
            WorkloadSpec(
                num_nodes=150, num_facilities=50, num_cost_types=2, num_queries=4, seed=11
            )
        )
        stream = make_update_stream(
            workload.graph,
            workload.facilities,
            UpdateStreamSpec(num_ticks=1, updates_per_tick=1300, seed=5),
        )
        signatures = {}
        compiled_state = {}
        for mode in (True, False):
            facilities = FacilitySet(workload.graph, iter(workload.facilities))
            service = MonitoringService(
                workload.graph,
                facilities,
                policy=ExecutionPolicy(compiled="on" if mode else "off"),
            )
            revision_before = facilities.revision
            sids = [service.subscribe(SkylineRequest(query)) for query in workload.queries]
            for tick in stream:
                service.apply_tick(tick)
            # The tick genuinely overflowed the bounded changelog.
            assert facilities.changed_facilities_since(revision_before) is None
            signatures[mode] = [service.result_signature(sid) for sid in sids]
            if mode:
                compiled_state[mode] = (service._engine.compiled_graph, facilities)
        assert signatures[True] == signatures[False]
        compiled, facilities = compiled_state[True]
        assert compiled is not None
        compiled.ensure_fresh()
        fresh = CompiledGraph(workload.graph, facilities)
        assert compiled._edge_records == fresh._edge_records
        assert compiled.facility_edge_of == fresh.facility_edge_of
        for cost_index in range(workload.graph.num_cost_types):
            assert compiled.hot_facilities(cost_index) == fresh.hot_facilities(cost_index)
