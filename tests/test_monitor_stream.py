"""Tests for the update-stream model, its JSON codecs and the stream generator."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.datagen import (
    UpdateStreamSpec,
    WorkloadSpec,
    make_update_stream,
    make_workload,
    update_stream_spec_from_payload,
    update_stream_spec_to_payload,
)
from repro.errors import DataGenerationError, QueryError
from repro.monitor import (
    FacilityDelete,
    FacilityInsert,
    QueryRelocation,
    UpdateStream,
    UpdateTick,
    stream_from_payload,
    stream_to_payload,
    tick_from_payload,
    tick_to_payload,
    update_from_payload,
    update_to_payload,
)
from repro.network.location import NetworkLocation


def sample_updates():
    return (
        FacilityInsert(7, 3, 1.5),
        FacilityDelete(2),
        QueryRelocation(0, NetworkLocation.at_node(4)),
        QueryRelocation(1, NetworkLocation.on_edge(9, 0.25)),
    )


class TestStreamModel:
    def test_tick_is_iterable_and_sized(self):
        tick = UpdateTick(sample_updates())
        assert len(tick) == 4
        assert list(tick) == list(sample_updates())

    def test_tick_rejects_non_updates(self):
        with pytest.raises(QueryError):
            UpdateTick(("not an update",))

    def test_stream_rejects_non_ticks(self):
        with pytest.raises(QueryError):
            UpdateStream((UpdateTick(()), "not a tick"))

    def test_stream_counts(self):
        stream = UpdateStream(
            (UpdateTick(sample_updates()), UpdateTick((FacilityInsert(8, 0, 0.0),)))
        )
        assert len(stream) == 2
        assert stream.num_updates == 5
        assert stream.counts_by_kind() == {
            "insert": 2, "delete": 1, "relocate": 2, "edge-cost": 0,
        }

    def test_updates_are_hashable_and_picklable(self):
        stream = UpdateStream((UpdateTick(sample_updates()),))
        assert len({update for tick in stream for update in tick}) == 4
        clone = pickle.loads(pickle.dumps(stream))
        assert clone == stream


class TestStreamCodecs:
    def test_update_payloads_round_trip(self):
        for update in sample_updates():
            payload = update_to_payload(update)
            assert update_from_payload(json.loads(json.dumps(payload))) == update

    def test_tick_payload_round_trips(self):
        tick = UpdateTick(sample_updates())
        assert tick_from_payload(tick_to_payload(tick)) == tick

    def test_stream_payload_round_trips_through_json(self):
        stream = UpdateStream(
            (UpdateTick(sample_updates()), UpdateTick((FacilityDelete(7),)))
        )
        payload = json.loads(json.dumps(stream_to_payload(stream)))
        assert stream_from_payload(payload) == stream

    def test_unknown_update_type_rejected(self):
        with pytest.raises(QueryError):
            update_from_payload({"type": "teleport"})

    def test_missing_field_rejected(self):
        with pytest.raises(QueryError):
            update_from_payload({"type": "insert", "facility": 1})

    def test_stream_payload_missing_ticks_rejected(self):
        with pytest.raises(QueryError):
            stream_from_payload({})


class TestUpdateStreamSpec:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(DataGenerationError):
            UpdateStreamSpec(insert_fraction=0.5, delete_fraction=0.2, relocate_fraction=0.1)

    def test_negative_fraction_rejected(self):
        with pytest.raises(DataGenerationError):
            UpdateStreamSpec(insert_fraction=-0.1, delete_fraction=1.0, relocate_fraction=0.1)

    def test_locality_bounds(self):
        with pytest.raises(DataGenerationError):
            UpdateStreamSpec(locality=1.5)

    def test_updates_per_tick_positive(self):
        with pytest.raises(DataGenerationError):
            UpdateStreamSpec(updates_per_tick=0)

    def test_spec_payload_round_trips(self):
        spec = UpdateStreamSpec(num_ticks=7, updates_per_tick=3, locality=0.25, seed=99)
        assert update_stream_spec_from_payload(update_stream_spec_to_payload(spec)) == spec


@pytest.fixture(scope="module")
def generation_workload():
    return make_workload(
        WorkloadSpec(num_nodes=120, num_facilities=40, num_cost_types=2, num_queries=0, seed=23)
    )


class TestMakeUpdateStream:
    def test_deterministic_per_spec(self, generation_workload):
        w = generation_workload
        spec = UpdateStreamSpec(num_ticks=6, updates_per_tick=4, seed=5)
        first = make_update_stream(w.graph, w.facilities, spec, subscription_ids=[0, 1])
        second = make_update_stream(w.graph, w.facilities, spec, subscription_ids=[0, 1])
        assert first == second

    def test_does_not_mutate_the_facility_set(self, generation_workload):
        w = generation_workload
        before = set(w.facilities.facility_ids())
        make_update_stream(
            w.graph, w.facilities, UpdateStreamSpec(num_ticks=10, updates_per_tick=6, seed=2)
        )
        assert set(w.facilities.facility_ids()) == before

    def test_shape_matches_spec(self, generation_workload):
        w = generation_workload
        spec = UpdateStreamSpec(num_ticks=9, updates_per_tick=3, seed=4)
        stream = make_update_stream(w.graph, w.facilities, spec)
        assert len(stream) == 9
        assert all(len(tick) == 3 for tick in stream)

    def test_no_relocations_without_subscriptions(self, generation_workload):
        w = generation_workload
        spec = UpdateStreamSpec(
            num_ticks=10, updates_per_tick=5, relocate_fraction=0.4,
            insert_fraction=0.3, delete_fraction=0.3, seed=6,
        )
        stream = make_update_stream(w.graph, w.facilities, spec)
        assert stream.counts_by_kind()["relocate"] == 0

    def test_relocations_target_given_subscriptions(self, generation_workload):
        w = generation_workload
        spec = UpdateStreamSpec(
            num_ticks=12, updates_per_tick=5, relocate_fraction=0.4,
            insert_fraction=0.3, delete_fraction=0.3, seed=6,
        )
        stream = make_update_stream(w.graph, w.facilities, spec, subscription_ids=[3, 8])
        relocations = [
            update for tick in stream for update in tick
            if isinstance(update, QueryRelocation)
        ]
        assert relocations, "the 40% relocate mix produced no relocations"
        assert {update.subscription_id for update in relocations} <= {3, 8}
        for update in relocations:
            update.location.validate(w.graph)

    def test_stream_is_sequentially_valid(self, generation_workload):
        """Every delete names a live id; every insert uses a fresh id."""
        w = generation_workload
        spec = UpdateStreamSpec(num_ticks=30, updates_per_tick=6, seed=11)
        stream = make_update_stream(w.graph, w.facilities, spec)
        live = set(w.facilities.facility_ids())
        for tick in stream:
            for update in tick:
                if isinstance(update, FacilityInsert):
                    assert update.facility_id not in live
                    edge = w.graph.edge(update.edge_id)
                    assert 0.0 <= update.offset <= edge.length
                    live.add(update.facility_id)
                elif isinstance(update, FacilityDelete):
                    assert update.facility_id in live
                    live.remove(update.facility_id)
            assert len(live) >= spec.min_live_facilities

    def test_mix_fractions_roughly_respected(self, generation_workload):
        w = generation_workload
        spec = UpdateStreamSpec(
            num_ticks=40, updates_per_tick=5,
            insert_fraction=0.6, delete_fraction=0.4, relocate_fraction=0.0, seed=13,
        )
        counts = make_update_stream(w.graph, w.facilities, spec).counts_by_kind()
        total = counts["insert"] + counts["delete"]
        assert total == 200
        assert 0.45 <= counts["insert"] / total <= 0.75

    def test_full_locality_places_inserts_near_existing_facilities(self, generation_workload):
        w = generation_workload
        spec = UpdateStreamSpec(
            num_ticks=10, updates_per_tick=4, locality=1.0,
            insert_fraction=1.0, delete_fraction=0.0, relocate_fraction=0.0, seed=8,
        )
        stream = make_update_stream(w.graph, w.facilities, spec)
        hosting = {facility.edge_id for facility in w.facilities}
        for tick in stream:
            for update in tick:
                # Each localised insert lands on an edge incident to an edge
                # hosting a facility at that point of the stream.
                edge = w.graph.edge(update.edge_id)
                incident_hosts = {
                    e.edge_id
                    for node in (edge.u, edge.v)
                    for _n, e in w.graph.neighbors(node)
                } | {update.edge_id}
                assert incident_hosts & hosting or update.edge_id in hosting
                hosting.add(update.edge_id)

    def test_empty_graph_rejected(self):
        from repro.network.graph import MultiCostGraph
        from repro.network.facilities import FacilitySet

        graph = MultiCostGraph(num_cost_types=1)
        graph.add_node(0, 0.0, 0.0)
        with pytest.raises(DataGenerationError):
            make_update_stream(graph, FacilitySet(graph), UpdateStreamSpec(num_ticks=1))
