"""Unit tests for the static B+ tree and the adjacency/facility file layouts."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.network import FacilitySet, MultiCostGraph
from repro.storage.btree import StaticBPlusTree
from repro.storage.buffer import LRUBufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.layout import build_adjacency_file, build_facility_file
from repro.storage.pages import PageKind, RecordSizes


class TestStaticBPlusTree:
    def _tree(self, entries, page_size=64):
        disk = SimulatedDisk(page_size=page_size)
        tree = StaticBPlusTree(disk, PageKind.ADJACENCY_INDEX, entries)
        buffer = LRUBufferPool(disk, capacity=0)
        return tree, buffer

    def test_lookup_every_key(self):
        entries = [(key, f"value-{key}") for key in range(50)]
        tree, buffer = self._tree(entries)
        for key, value in entries:
            assert tree.lookup(key, buffer) == value

    def test_lookup_missing_key_raises(self):
        tree, buffer = self._tree([(1, "a"), (5, "b")])
        with pytest.raises(StorageError):
            tree.lookup(3, buffer)

    def test_empty_tree(self):
        tree, buffer = self._tree([])
        assert tree.root_page_id is None
        assert tree.num_entries == 0
        with pytest.raises(StorageError):
            tree.lookup(0, buffer)

    def test_duplicate_keys_rejected(self):
        disk = SimulatedDisk(page_size=64)
        with pytest.raises(StorageError):
            StaticBPlusTree(disk, PageKind.ADJACENCY_INDEX, [(1, "a"), (1, "b")])

    def test_height_grows_with_entries(self):
        small_tree, _ = self._tree([(k, k) for k in range(4)])
        large_tree, _ = self._tree([(k, k) for k in range(500)])
        assert large_tree.height > small_tree.height

    def test_lookup_reads_height_pages(self):
        entries = [(key, key) for key in range(300)]
        tree, buffer = self._tree(entries)
        before = buffer.statistics.requests
        tree.lookup(137, buffer)
        assert buffer.statistics.requests - before == tree.height

    def test_unsorted_input_is_sorted_internally(self):
        tree, buffer = self._tree([(5, "e"), (1, "a"), (3, "c")])
        assert tree.lookup(1, buffer) == "a"
        assert tree.lookup(5, buffer) == "e"

    def test_page_count_positive(self):
        tree, _ = self._tree([(k, k) for k in range(100)])
        assert tree.page_count() >= tree.height


@pytest.fixture
def packed_network(tiny_graph, tiny_facilities):
    disk = SimulatedDisk(page_size=256)
    facility_layout = build_facility_file(disk, tiny_facilities)
    adjacency_layout = build_adjacency_file(disk, tiny_graph, tiny_facilities, facility_layout)
    return disk, facility_layout, adjacency_layout


class TestFacilityFileLayout:
    def test_every_facility_edge_has_pages(self, packed_network, tiny_facilities):
        _disk, facility_layout, _ = packed_network
        for edge_id in tiny_facilities.edges_with_facilities():
            assert facility_layout.edge_pages[edge_id]

    def test_facility_records_recoverable(self, packed_network, tiny_facilities):
        disk, facility_layout, _ = packed_network
        for edge_id in tiny_facilities.edges_with_facilities():
            found = []
            for page_id in facility_layout.edge_pages[edge_id]:
                for record in disk.read(page_id).records:
                    if getattr(record, "edge_id", None) == edge_id:
                        found.append(record.facility_id)
            expected = [facility.facility_id for facility in tiny_facilities.on_edge(edge_id)]
            assert found == expected

    def test_small_pages_force_multiple_pages(self, tiny_graph):
        facilities = FacilitySet(tiny_graph)
        edge = next(iter(tiny_graph.edges()))
        for facility_id in range(50):
            facilities.add_on_edge(facility_id, edge.edge_id, 0.5)
        disk = SimulatedDisk(page_size=64)
        layout = build_facility_file(disk, facilities)
        assert layout.page_count > 1
        assert len(layout.edge_pages[edge.edge_id]) > 1


class TestAdjacencyFileLayout:
    def test_every_node_has_pages(self, packed_network, tiny_graph):
        _disk, _facility_layout, adjacency_layout = packed_network
        for node in tiny_graph.nodes():
            assert adjacency_layout.node_pages[node.node_id]

    def test_adjacency_records_recoverable(self, packed_network, tiny_graph):
        disk, _facility_layout, adjacency_layout = packed_network
        for node in tiny_graph.nodes():
            neighbors = set()
            for page_id in adjacency_layout.node_pages[node.node_id]:
                for record in disk.read(page_id).records:
                    if getattr(record, "node", None) == node.node_id:
                        neighbors.add(record.record.neighbor)
            expected = {neighbor for neighbor, _edge in tiny_graph.neighbors(node.node_id)}
            assert neighbors == expected

    def test_adjacency_entries_carry_facility_pointers(self, packed_network, tiny_graph, tiny_facilities):
        disk, facility_layout, adjacency_layout = packed_network
        highway = tiny_graph.edge_between(4, 5)
        pointer_seen = False
        for page_id in adjacency_layout.node_pages[4]:
            for record in disk.read(page_id).records:
                if getattr(record, "node", None) == 4 and record.record.edge_id == highway.edge_id:
                    assert record.facility_pages == facility_layout.edge_pages[highway.edge_id]
                    pointer_seen = True
        assert pointer_seen

    def test_isolated_node_gets_empty_pointer(self, tiny_facilities, tiny_graph):
        graph = MultiCostGraph(2)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(0, 1, [1.0, 1.0])
        facilities = FacilitySet(graph)
        disk = SimulatedDisk(page_size=256)
        facility_layout = build_facility_file(disk, facilities)
        adjacency_layout = build_adjacency_file(disk, graph, facilities, facility_layout)
        assert adjacency_layout.node_pages[2] == ()

    def test_page_count_scales_with_page_size(self, tiny_graph, tiny_facilities):
        small_disk = SimulatedDisk(page_size=64)
        large_disk = SimulatedDisk(page_size=4096)
        small = build_adjacency_file(
            small_disk, tiny_graph, tiny_facilities, build_facility_file(small_disk, tiny_facilities)
        )
        large = build_adjacency_file(
            large_disk, tiny_graph, tiny_facilities, build_facility_file(large_disk, tiny_facilities)
        )
        assert small.page_count > large.page_count
