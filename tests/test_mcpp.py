"""Tests for the multi-criteria Pareto path (MCPP) label-correcting solver."""

from __future__ import annotations

import random

import pytest

from repro.classic.mcpp import pareto_paths
from repro.errors import GraphError
from repro.network import MultiCostGraph, dominates, shortest_path_between_nodes
from tests.helpers import random_mcn


class TestSmallGraphs:
    def test_single_edge(self):
        graph = MultiCostGraph(2)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [2.0, 3.0])
        paths = pareto_paths(graph, 0, 1)
        assert len(paths) == 1
        assert paths[0].costs.values == (2.0, 3.0)
        assert paths[0].nodes == (0, 1)

    def test_two_incomparable_routes(self):
        graph = MultiCostGraph(2)
        for node_id in range(4):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0, 5.0])
        graph.add_edge(1, 3, [1.0, 5.0])
        graph.add_edge(0, 2, [5.0, 1.0])
        graph.add_edge(2, 3, [5.0, 1.0])
        paths = pareto_paths(graph, 0, 3)
        costs = {path.costs.values for path in paths}
        assert costs == {(2.0, 10.0), (10.0, 2.0)}

    def test_dominated_route_excluded(self):
        graph = MultiCostGraph(2)
        for node_id in range(3):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0, 1.0])
        graph.add_edge(1, 2, [1.0, 1.0])
        graph.add_edge(0, 2, [5.0, 5.0])  # dominated by the two-hop route
        paths = pareto_paths(graph, 0, 2)
        assert len(paths) == 1
        assert paths[0].costs.values == (2.0, 2.0)

    def test_source_equals_target(self):
        graph = MultiCostGraph(2)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [1.0, 1.0])
        paths = pareto_paths(graph, 0, 0)
        assert len(paths) == 1
        assert paths[0].costs.values == (0.0, 0.0)

    def test_unknown_nodes_rejected(self):
        graph = MultiCostGraph(1)
        graph.add_node(0)
        with pytest.raises(GraphError):
            pareto_paths(graph, 0, 9)
        with pytest.raises(GraphError):
            pareto_paths(graph, 9, 0)

    def test_unreachable_target_gives_no_paths(self):
        graph = MultiCostGraph(1)
        for node_id in range(3):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0])
        assert pareto_paths(graph, 0, 2) == []

    def test_label_explosion_guard(self):
        graph = MultiCostGraph(2)
        for node_id in range(3):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0, 2.0])
        graph.add_edge(1, 2, [1.0, 2.0])
        with pytest.raises(GraphError):
            pareto_paths(graph, 0, 2, max_labels_per_node=0)


class TestAgainstSingleCostOptima:
    def test_pareto_set_contains_every_single_cost_optimum(self):
        graph, _facilities = random_mcn(
            num_nodes=30, num_edges=60, num_cost_types=3, num_facilities=0, seed=12
        )
        rng = random.Random(0)
        nodes = list(graph.node_ids())
        for _ in range(4):
            source, target = rng.sample(nodes, 2)
            paths = pareto_paths(graph, source, target)
            assert paths, "connected graph must have at least one Pareto path"
            for cost_index in range(graph.num_cost_types):
                optimum = shortest_path_between_nodes(graph, source, target, cost_index)
                best_in_pareto = min(path.costs[cost_index] for path in paths)
                assert best_in_pareto == pytest.approx(optimum.cost(cost_index))

    def test_results_are_mutually_non_dominated(self):
        graph, _facilities = random_mcn(
            num_nodes=25, num_edges=50, num_cost_types=2, num_facilities=0, seed=5
        )
        paths = pareto_paths(graph, 0, 10)
        for first in paths:
            for second in paths:
                if first is not second:
                    assert not dominates(first.costs.values, second.costs.values)

    def test_paths_are_valid_walks(self):
        graph, _facilities = random_mcn(
            num_nodes=20, num_edges=40, num_cost_types=2, num_facilities=0, seed=8
        )
        for path in pareto_paths(graph, 0, 5):
            assert path.nodes[0] == 0 and path.nodes[-1] == 5
            total = [0.0, 0.0]
            for u, v in zip(path.nodes, path.nodes[1:]):
                edge = graph.edge_between(u, v)
                assert edge is not None
                total = [t + c for t, c in zip(total, edge.costs)]
            assert tuple(total) == pytest.approx(path.costs.values)
