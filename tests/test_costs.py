"""Unit tests for cost vectors and the dominance relation."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.network.costs import CostVector, dominates, dominates_or_equal


class TestCostVectorConstruction:
    def test_values_are_stored_as_floats(self):
        vector = CostVector([1, 2, 3])
        assert vector.values == (1.0, 2.0, 3.0)

    def test_dimensions(self):
        assert CostVector([1.0, 2.0]).dimensions == 2

    def test_zeros_constructor(self):
        assert CostVector.zeros(3).values == (0.0, 0.0, 0.0)

    def test_empty_vector_rejected(self):
        with pytest.raises(GraphError):
            CostVector([])

    def test_negative_cost_rejected(self):
        with pytest.raises(GraphError):
            CostVector([1.0, -0.5])

    def test_zero_costs_allowed(self):
        assert CostVector([0.0, 0.0]).values == (0.0, 0.0)

    def test_accepts_any_iterable(self):
        assert CostVector(iter([1.0, 2.0])).values == (1.0, 2.0)


class TestCostVectorBehaviour:
    def test_sequence_protocol(self):
        vector = CostVector([5.0, 7.0, 9.0])
        assert len(vector) == 3
        assert vector[1] == 7.0
        assert list(vector) == [5.0, 7.0, 9.0]

    def test_equality_with_other_vector(self):
        assert CostVector([1.0, 2.0]) == CostVector([1.0, 2.0])
        assert CostVector([1.0, 2.0]) != CostVector([2.0, 1.0])

    def test_equality_with_tuple(self):
        assert CostVector([1.0, 2.0]) == (1.0, 2.0)

    def test_hashable(self):
        assert len({CostVector([1.0]), CostVector([1.0]), CostVector([2.0])}) == 2

    def test_repr_mentions_values(self):
        assert "1" in repr(CostVector([1.0, 2.0]))

    def test_addition(self):
        assert (CostVector([1.0, 2.0]) + CostVector([3.0, 4.0])).values == (4.0, 6.0)

    def test_addition_with_plain_sequence(self):
        assert (CostVector([1.0, 2.0]) + (1.0, 1.0)).values == (2.0, 3.0)

    def test_addition_dimension_mismatch(self):
        with pytest.raises(GraphError):
            CostVector([1.0]) + CostVector([1.0, 2.0])

    def test_scale(self):
        assert CostVector([2.0, 4.0]).scale(0.5).values == (1.0, 2.0)

    def test_scale_by_zero(self):
        assert CostVector([2.0, 4.0]).scale(0.0).values == (0.0, 0.0)

    def test_scale_negative_rejected(self):
        with pytest.raises(GraphError):
            CostVector([1.0]).scale(-1.0)


class TestDominance:
    def test_strictly_smaller_everywhere_dominates(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_smaller_in_one_dimension_with_ties_dominates(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_incomparable_vectors(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_dominance_not_symmetric(self):
        assert dominates((0.0, 0.0), (1.0, 1.0))
        assert not dominates((1.0, 1.0), (0.0, 0.0))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(GraphError):
            dominates((1.0,), (1.0, 2.0))

    def test_dominates_or_equal_includes_equality(self):
        assert dominates_or_equal((1.0, 2.0), (1.0, 2.0))
        assert dominates_or_equal((1.0, 1.0), (1.0, 2.0))
        assert not dominates_or_equal((2.0, 1.0), (1.0, 2.0))

    def test_methods_match_functions(self):
        smaller = CostVector([1.0, 1.0])
        larger = CostVector([2.0, 2.0])
        assert smaller.dominates(larger)
        assert smaller.dominates_or_equal(larger)
        assert not larger.dominates(smaller)

    def test_single_dimension_dominance(self):
        assert dominates((1.0,), (2.0,))
        assert not dominates((2.0,), (2.0,))
