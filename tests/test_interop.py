"""Tests for networkx interoperability."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.engine import MCNQueryEngine
from repro.errors import GraphError
from repro.network import FacilitySet, NetworkLocation, from_networkx, to_networkx
from repro.network.dijkstra import shortest_path_between_nodes


def sample_nx_graph() -> nx.Graph:
    graph = nx.Graph()
    graph.add_node(0, x=0.0, y=0.0)
    graph.add_node(1, x=1.0, y=0.0)
    graph.add_node(2, x=2.0, y=0.0)
    graph.add_edge(0, 1, minutes=5.0, dollars=1.0, metres=400.0)
    graph.add_edge(1, 2, minutes=3.0, dollars=0.0, metres=300.0)
    graph.add_edge(0, 2, minutes=10.0, dollars=0.0, metres=900.0)
    return graph


class TestFromNetworkx:
    def test_structure_and_costs_converted(self):
        graph = from_networkx(sample_nx_graph(), ["minutes", "dollars"], length_attribute="metres")
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert graph.num_cost_types == 2
        edge = graph.edge_between(0, 1)
        assert edge.costs == (5.0, 1.0)
        assert edge.length == 400.0

    def test_coordinates_converted(self):
        graph = from_networkx(sample_nx_graph(), ["minutes"])
        assert graph.node(2).x == 2.0

    def test_length_defaults_to_first_cost(self):
        graph = from_networkx(sample_nx_graph(), ["minutes", "dollars"])
        assert graph.edge_between(1, 2).length == 3.0

    def test_directed_graph_conversion(self):
        digraph = nx.DiGraph()
        digraph.add_edge(0, 1, w=1.0)
        digraph.add_edge(1, 0, w=5.0)
        graph = from_networkx(digraph, ["w"])
        assert graph.directed
        assert shortest_path_between_nodes(graph, 0, 1, 0).cost(0) == 1.0
        assert shortest_path_between_nodes(graph, 1, 0, 0).cost(0) == 5.0

    def test_missing_cost_attribute_rejected(self):
        graph = sample_nx_graph()
        with pytest.raises(GraphError):
            from_networkx(graph, ["minutes", "missing"])

    def test_missing_length_attribute_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(sample_nx_graph(), ["minutes"], length_attribute="missing")

    def test_empty_cost_attributes_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(sample_nx_graph(), [])

    def test_multigraph_rejected(self):
        multigraph = nx.MultiGraph()
        multigraph.add_edge(0, 1, w=1.0)
        with pytest.raises(GraphError):
            from_networkx(multigraph, ["w"])

    def test_string_integer_nodes_converted(self):
        graph = nx.Graph()
        graph.add_edge("10", "20", w=1.0)
        converted = from_networkx(graph, ["w"])
        assert converted.has_node(10) and converted.has_node(20)

    def test_non_integer_nodes_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", w=1.0)
        with pytest.raises(GraphError):
            from_networkx(graph, ["w"])

    def test_shortest_paths_agree_with_networkx(self):
        nx_graph = sample_nx_graph()
        graph = from_networkx(nx_graph, ["minutes", "dollars"])
        expected = nx.shortest_path_length(nx_graph, 0, 2, weight="minutes")
        observed = shortest_path_between_nodes(graph, 0, 2, 0).cost(0)
        assert observed == pytest.approx(expected)

    def test_queries_on_converted_graph(self):
        graph = from_networkx(sample_nx_graph(), ["minutes", "dollars"])
        facilities = FacilitySet(graph)
        facilities.add_on_edge(0, graph.edge_between(1, 2).edge_id, 1.0)
        facilities.add_on_edge(1, graph.edge_between(0, 2).edge_id, 5.0)
        engine = MCNQueryEngine(graph, facilities)
        result = engine.skyline(NetworkLocation.at_node(0))
        assert len(result) >= 1


class TestToNetworkx:
    def test_round_trip_preserves_costs(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph, cost_names=["minutes", "dollars"])
        back = from_networkx(nx_graph, ["minutes", "dollars"], length_attribute="length")
        assert back.num_nodes == tiny_graph.num_nodes
        assert back.num_edges == tiny_graph.num_edges
        for edge in tiny_graph.edges():
            assert back.edge_between(edge.u, edge.v).costs == edge.costs

    def test_default_cost_names(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        _, _, data = next(iter(nx_graph.edges(data=True)))
        assert "cost_0" in data and "cost_1" in data and "length" in data

    def test_wrong_cost_name_count_rejected(self, tiny_graph):
        with pytest.raises(GraphError):
            to_networkx(tiny_graph, cost_names=["only-one"])

    def test_directed_flag_preserved(self):
        from repro.network import MultiCostGraph

        graph = MultiCostGraph(1, directed=True)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [1.0])
        assert to_networkx(graph).is_directed()

    def test_node_coordinates_exported(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        assert nx_graph.nodes[5]["x"] == tiny_graph.node(5).x

    def test_networkx_analytics_work_on_export(self, tiny_graph):
        nx_graph = to_networkx(tiny_graph)
        assert nx.is_connected(nx_graph)
        assert nx_graph.number_of_edges() == tiny_graph.num_edges
