"""Tests for the workload replay driver and the ``serve-batch`` CLI command."""

from __future__ import annotations

import pytest

from repro.bench.driver import (
    ReplaySpec,
    build_requests,
    format_replay_report,
    percentile,
    replay_workload,
)
from repro.cli import build_parser, main
from repro.datagen.workload import WorkloadSpec, make_workload
from repro.errors import QueryError
from repro.service import SkylineRequest, TopKRequest


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 90) == 9.0
        assert percentile(values, 100) == 10.0
        assert percentile(values, 0) == 1.0

    def test_single_sample(self):
        assert percentile([3.5], 99) == 3.5

    def test_errors(self):
        with pytest.raises(QueryError):
            percentile([], 50)
        with pytest.raises(QueryError):
            percentile([1.0], 101)


class TestReplaySpec:
    def test_invalid_mix_rejected(self):
        with pytest.raises(QueryError):
            ReplaySpec(mix="everything")

    def test_invalid_k_rejected(self):
        with pytest.raises(QueryError):
            ReplaySpec(k=0)


class TestBuildRequests:
    @pytest.fixture(scope="class")
    def workload(self):
        return make_workload(
            WorkloadSpec(num_nodes=120, num_facilities=40, num_cost_types=2, num_queries=6, seed=3)
        )

    def test_mixed_alternates(self, workload):
        requests = build_requests(workload, ReplaySpec(mix="mixed", k=2))
        kinds = [type(request) for request in requests]
        assert kinds == [SkylineRequest, TopKRequest] * 3

    def test_pure_mixes(self, workload):
        assert all(
            isinstance(request, SkylineRequest)
            for request in build_requests(workload, ReplaySpec(mix="skyline"))
        )
        topk = build_requests(workload, ReplaySpec(mix="topk", k=3))
        assert all(isinstance(request, TopKRequest) and request.k == 3 for request in topk)

    def test_trace_is_deterministic(self, workload):
        spec = ReplaySpec(mix="topk", k=2)
        assert build_requests(workload, spec) == build_requests(workload, spec)


class TestReplayWorkload:
    def test_clustered_100_query_batch_saves_pages_with_identical_results(self):
        """The PR's acceptance criterion: on a clustered 100-query workload the
        batch service answers with strictly fewer total page reads than 100
        independent engine calls, with identical query results."""
        spec = ReplaySpec(
            workload=WorkloadSpec(
                num_nodes=250,
                num_facilities=100,
                num_cost_types=3,
                clustered=True,
                num_queries=100,
                seed=13,
            ),
            mix="mixed",
            k=4,
            page_size=1024,
        )
        report = replay_workload(spec)
        assert report.identical_results
        assert report.batched.page_reads < report.one_shot.page_reads
        assert report.page_reads_saved > 0 and report.savings_fraction > 0
        assert report.one_shot.queries == report.batched.queries == 100

    def test_report_metrics_populated(self):
        spec = ReplaySpec(
            workload=WorkloadSpec(
                num_nodes=150, num_facilities=60, num_cost_types=2, num_queries=8, seed=5
            ),
            mix="mixed",
            k=2,
            page_size=1024,
        )
        report = replay_workload(spec)
        for run in (report.one_shot, report.batched):
            assert run.queries == 8
            assert len(run.latencies_ms) == 8
            assert run.throughput_qps > 0
            assert run.latency_percentile(50) <= run.latency_percentile(99)
        assert report.cache.record_hits > 0

    def test_formatted_report(self):
        spec = ReplaySpec(
            workload=WorkloadSpec(
                num_nodes=150, num_facilities=60, num_cost_types=2, num_queries=4, seed=5
            ),
            page_size=1024,
        )
        text = format_replay_report(replay_workload(spec))
        assert "one-shot" in text and "batched" in text
        assert "page reads saved" in text
        assert "results identical: yes" in text


class TestServeBatchCLI:
    def test_parser_accepts_serve_batch(self):
        args = build_parser().parse_args(
            ["serve-batch", "--nodes", "150", "--queries", "10", "--mix", "skyline"]
        )
        assert args.command == "serve-batch" and args.mix == "skyline"

    def test_serve_batch_command(self, capsys):
        code = main(
            [
                "serve-batch",
                "--nodes", "150",
                "--facilities", "60",
                "--cost-types", "2",
                "--queries", "10",
                "--k", "2",
                "--page-size", "1024",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "page reads saved" in output
        assert "results identical: yes" in output
