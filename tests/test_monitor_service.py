"""Tests for the continuous monitoring service (subscriptions, ticks, deltas)."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.aggregates import WeightedSum
from repro.core.maintenance import MaintenanceStatistics
from repro.datagen import UpdateStreamSpec, WorkloadSpec, make_update_stream, make_workload
from repro.errors import FacilityError, QueryError
from repro.monitor import (
    FacilityDelete,
    FacilityInsert,
    MonitoringService,
    QueryRelocation,
    UpdateStream,
    UpdateTick,
    delta_report_to_payload,
    tick_report_to_payload,
)
from repro.network import Facility, FacilitySet, MultiCostGraph, NetworkLocation
from repro.parallel import ParallelExecution
from repro.service import SkylineRequest, TopKRequest
from tests.helpers import (
    exact_skyline,
    exact_top_k,
    facility_vectors,
    random_mcn,
    random_query,
)


@pytest.fixture
def tiny_service(tiny_graph, tiny_facilities):
    return MonitoringService(tiny_graph, tiny_facilities)


class TestSubscriptionLifecycle:
    def test_subscribe_returns_increasing_ids(self, tiny_service, tiny_query):
        first = tiny_service.subscribe(SkylineRequest(tiny_query))
        second = tiny_service.subscribe(TopKRequest(tiny_query, k=2, weights=(0.5, 0.5)))
        assert (first, second) == (0, 1)
        assert tiny_service.subscription_ids == (0, 1)

    def test_initial_results_match_oracle(self, tiny_graph, tiny_facilities, tiny_query):
        service = MonitoringService(tiny_graph, tiny_facilities)
        sky = service.subscribe(SkylineRequest(tiny_query))
        top = service.subscribe(TopKRequest(tiny_query, k=2, weights=(0.5, 0.5)))
        vectors = facility_vectors(tiny_graph, tiny_facilities, tiny_query)
        assert set(service.result_signature(sky)) == exact_skyline(vectors)
        oracle = exact_top_k(vectors, WeightedSum((0.5, 0.5)), 2)
        assert service.result_signature(top) == {
            fid: round(score, 9) for fid, score in oracle
        }

    def test_invalid_location_rejected(self, tiny_service):
        with pytest.raises(Exception):
            tiny_service.subscribe(SkylineRequest(NetworkLocation.at_node(999)))

    def test_invalid_aggregate_arity_rejected(self, tiny_service, tiny_query):
        with pytest.raises(QueryError):
            tiny_service.subscribe(TopKRequest(tiny_query, k=2, weights=(0.2, 0.3, 0.5)))

    def test_unsubscribe_stops_updates(self, tiny_service, tiny_query, tiny_graph):
        sid = tiny_service.subscribe(SkylineRequest(tiny_query))
        tiny_service.unsubscribe(sid)
        assert tiny_service.subscription_ids == ()
        with pytest.raises(QueryError):
            tiny_service.result_signature(sid)
        # The next tick must not try to notify the dropped maintainer.
        edge = tiny_graph.edge_between(3, 4)
        report = tiny_service.apply_tick(UpdateTick((FacilityInsert(50, edge.edge_id, 0.0),)))
        assert report.deltas == []

    def test_unsubscribe_unknown_rejected(self, tiny_service):
        with pytest.raises(QueryError):
            tiny_service.unsubscribe(7)

    def test_mismatched_facility_set_rejected(self, tiny_graph, line_graph):
        with pytest.raises(QueryError):
            MonitoringService(tiny_graph, FacilitySet(line_graph))


class TestTickApplication:
    def test_insert_enters_result(self, tiny_service, tiny_graph, tiny_query):
        sid = tiny_service.subscribe(SkylineRequest(tiny_query))
        close_edge = tiny_graph.edge_between(3, 4)
        report = tiny_service.apply_tick(
            UpdateTick((FacilityInsert(99, close_edge.edge_id, 0.0),))
        )
        (delta,) = report.deltas
        assert delta.subscription_id == sid
        assert delta.kind == "skyline"
        assert delta.entered == (99,)
        assert delta.changed
        assert report.counters.insertions == 1
        assert report.counters.incremental_updates == 1
        assert report.counters.recomputations == 0
        assert report.fallback_subscriptions == ()

    def test_delete_of_non_member_is_cheap_and_silent(self, tiny_graph, tiny_facilities, tiny_query):
        service = MonitoringService(tiny_graph, tiny_facilities)
        sid = service.subscribe(SkylineRequest(tiny_query))
        non_member = next(
            fid for fid in (0, 1, 2) if fid not in set(service.result_signature(sid))
        )
        report = service.apply_tick(UpdateTick((FacilityDelete(non_member),)))
        (delta,) = report.deltas
        assert not delta.changed
        assert report.counters.incremental_updates == 1
        assert report.counters.recomputations == 0

    def test_delete_of_member_falls_back_and_reports_left(
        self, tiny_graph, tiny_facilities, tiny_query
    ):
        service = MonitoringService(tiny_graph, tiny_facilities)
        sid = service.subscribe(SkylineRequest(tiny_query))
        member = next(iter(service.result_signature(sid)))
        report = service.apply_tick(UpdateTick((FacilityDelete(member),)))
        (delta,) = report.deltas
        assert member in delta.left
        assert report.fallback_subscriptions == (sid,)
        assert report.counters.recomputations == 1
        vectors = facility_vectors(tiny_graph, service.facilities, tiny_query)
        assert set(service.result_signature(sid)) == exact_skyline(vectors)

    def test_relocation_recomputes_one_subscription(self, tiny_graph, tiny_facilities, tiny_query):
        service = MonitoringService(tiny_graph, tiny_facilities)
        sky = service.subscribe(SkylineRequest(tiny_query))
        top = service.subscribe(TopKRequest(tiny_query, k=2, weights=(0.5, 0.5)))
        report = service.apply_tick(
            UpdateTick((QueryRelocation(top, NetworkLocation.at_node(8)),))
        )
        assert report.fallback_subscriptions == (top,)
        assert report.counters.query_moves == 1
        sky_delta, top_delta = report.deltas
        assert not sky_delta.changed
        vectors = facility_vectors(tiny_graph, service.facilities, NetworkLocation.at_node(8))
        oracle = exact_top_k(vectors, WeightedSum((0.5, 0.5)), 2)
        assert service.result_signature(top) == {fid: round(s, 9) for fid, s in oracle}
        assert service.maintainer_of(sky).query == tiny_query

    def test_one_fallback_per_subscription_per_tick(self, tiny_graph, tiny_facilities, tiny_query):
        """However many hard updates a tick carries, each subscription is
        recomputed at most once at the end of the tick."""
        service = MonitoringService(tiny_graph, tiny_facilities)
        sid = service.subscribe(SkylineRequest(tiny_query))
        members = sorted(service.result_signature(sid))
        assert len(members) >= 2
        report = service.apply_tick(
            UpdateTick(tuple(FacilityDelete(fid) for fid in members))
        )
        assert report.counters.recomputations == 1
        assert report.fallback_subscriptions == (sid,)
        vectors = facility_vectors(tiny_graph, service.facilities, tiny_query)
        assert set(service.result_signature(sid)) == exact_skyline(vectors)

    def test_ticks_with_no_subscriptions_still_mutate_the_set(self, tiny_service, tiny_graph):
        edge = tiny_graph.edge_between(0, 1)
        tiny_service.apply_tick(UpdateTick((FacilityInsert(77, edge.edge_id, 1.0),)))
        assert 77 in tiny_service.facilities
        tiny_service.apply_tick(UpdateTick((FacilityDelete(77),)))
        assert 77 not in tiny_service.facilities
        assert tiny_service.ticks_applied == 2

    def test_tick_io_counters_are_recorded(self, tiny_graph, tiny_facilities, tiny_query):
        service = MonitoringService(tiny_graph, tiny_facilities)
        sid = service.subscribe(SkylineRequest(tiny_query))
        # A fallback tick (member deletion) must show accessor work...
        member = next(iter(service.result_signature(sid)))
        report = service.apply_tick(UpdateTick((FacilityDelete(member),)))
        assert report.io.total_requests > 0
        assert service.access_statistics.total_requests >= report.io.total_requests
        # ...while an insert priced off already-materialised distance maps
        # is pure dictionary lookups: zero accessor requests.
        edge = tiny_graph.edge_between(3, 4)
        insert_report = service.apply_tick(UpdateTick((FacilityInsert(99, edge.edge_id, 0.0),)))
        assert insert_report.io.total_requests == 0

    def test_payloads_are_json_serializable(self, tiny_graph, tiny_facilities, tiny_query):
        service = MonitoringService(tiny_graph, tiny_facilities)
        service.subscribe(SkylineRequest(tiny_query))
        edge = tiny_graph.edge_between(3, 4)
        report = service.apply_tick(UpdateTick((FacilityInsert(99, edge.edge_id, 0.0),)))
        payload = json.loads(json.dumps(tick_report_to_payload(report)))
        assert payload["deltas"] == [delta_report_to_payload(d) for d in report.deltas]
        assert payload["counters"]["insertions"] == 1


class TestTickValidation:
    def test_bad_mid_tick_update_applies_nothing(self, tiny_graph, tiny_facilities, tiny_query):
        """A tick with an invalid third update leaves the set and every
        subscription exactly as they were — the PR's mid-batch fix."""
        service = MonitoringService(tiny_graph, tiny_facilities)
        sid = service.subscribe(SkylineRequest(tiny_query))
        before_ids = set(service.facilities.facility_ids())
        before_result = service.result_signature(sid)
        before_stats = service.statistics
        edge = tiny_graph.edge_between(3, 4)
        bad_tick = UpdateTick(
            (
                FacilityInsert(99, edge.edge_id, 0.0),
                FacilityDelete(0),
                FacilityDelete(12345),  # unknown facility
            )
        )
        with pytest.raises(FacilityError):
            service.apply_tick(bad_tick)
        assert set(service.facilities.facility_ids()) == before_ids
        assert service.result_signature(sid) == before_result
        assert service.statistics.since(before_stats) == MaintenanceStatistics()
        assert service.ticks_applied == 0

    def test_duplicate_insert_id_rejected(self, tiny_service, tiny_graph):
        edge = tiny_graph.edge_between(0, 1)
        with pytest.raises(FacilityError):
            tiny_service.apply_tick(
                UpdateTick(
                    (
                        FacilityInsert(99, edge.edge_id, 0.0),
                        FacilityInsert(99, edge.edge_id, 1.0),
                    )
                )
            )
        assert 99 not in tiny_service.facilities

    def test_insert_offset_outside_edge_rejected(self, tiny_service, tiny_graph):
        edge = tiny_graph.edge_between(0, 1)
        with pytest.raises(FacilityError):
            tiny_service.apply_tick(
                UpdateTick((FacilityInsert(99, edge.edge_id, edge.length + 5.0),))
            )

    def test_relocation_of_unknown_subscription_rejected(self, tiny_service):
        with pytest.raises(QueryError):
            tiny_service.apply_tick(
                UpdateTick((QueryRelocation(3, NetworkLocation.at_node(1)),))
            )

    def test_intra_tick_insert_then_delete_validates(self, tiny_service, tiny_graph):
        edge = tiny_graph.edge_between(0, 1)
        report = tiny_service.apply_tick(
            UpdateTick(
                (FacilityInsert(99, edge.edge_id, 0.5), FacilityDelete(99))
            )
        )
        assert report.updates == 2
        assert 99 not in tiny_service.facilities

    def test_intra_tick_delete_then_reinsert_same_id_validates(
        self, tiny_graph, tiny_facilities, tiny_query
    ):
        """A facility relocation modelled as delete + re-insert of the same id
        must validate against the tick's simulated live set, not the
        pre-tick set."""
        service = MonitoringService(tiny_graph, tiny_facilities)
        sid = service.subscribe(SkylineRequest(tiny_query))
        target = tiny_graph.edge_between(3, 4)
        report = service.apply_tick(
            UpdateTick((FacilityDelete(0), FacilityInsert(0, target.edge_id, 0.0)))
        )
        assert report.updates == 2
        assert service.facilities.facility(0).edge_id == target.edge_id
        vectors = facility_vectors(tiny_graph, service.facilities, tiny_query)
        assert set(service.result_signature(sid)) == exact_skyline(vectors)

    def test_unreachable_insert_rejected_up_front_and_service_stays_usable(self):
        """An insert unreachable from a subscription's query is rejected at
        validation time, so earlier updates of the tick are not applied and
        no subscription is left stale (the mid-tick wedge regression)."""
        graph = MultiCostGraph(num_cost_types=2)
        for node_id in range(4):
            graph.add_node(node_id, float(node_id), 0.0)
        edge_a = graph.add_edge(0, 1, (2.0, 3.0))
        edge_b = graph.add_edge(2, 3, (1.0, 1.0))  # disconnected component
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, edge_a.edge_id, 0.2))
        facilities.add(Facility(1, edge_a.edge_id, 0.8))
        service = MonitoringService(graph, facilities)
        sid = service.subscribe(SkylineRequest(NetworkLocation.at_node(0)))
        member = next(iter(service.result_signature(sid)))
        before = set(facilities.facility_ids())
        with pytest.raises(QueryError):
            service.apply_tick(
                UpdateTick(
                    (FacilityDelete(member), FacilityInsert(99, edge_b.edge_id, 0.5))
                )
            )
        assert set(facilities.facility_ids()) == before
        assert service.ticks_applied == 0
        # The service is not wedged: the next valid tick applies normally.
        report = service.apply_tick(UpdateTick((FacilityDelete(member),)))
        assert member in report.deltas[0].left
        vectors = facility_vectors(graph, facilities, NetworkLocation.at_node(0))
        assert set(service.result_signature(sid)) == exact_skyline(vectors)

    def test_non_tick_rejected(self, tiny_service):
        with pytest.raises(QueryError):
            tiny_service.apply_tick([FacilityDelete(0)])  # type: ignore[arg-type]

    def test_unsubscribe_keeps_lifetime_statistics(self, tiny_graph, tiny_facilities, tiny_query):
        service = MonitoringService(tiny_graph, tiny_facilities)
        sid = service.subscribe(SkylineRequest(tiny_query))
        edge = tiny_graph.edge_between(3, 4)
        service.apply_tick(UpdateTick((FacilityInsert(99, edge.edge_id, 0.0),)))
        before = service.statistics
        service.unsubscribe(sid)
        after = service.statistics
        assert after == before  # counters never shrink when subscriptions churn


class TestShardedFallback:
    def build(self, parallel, threshold=1):
        workload = make_workload(
            WorkloadSpec(num_nodes=150, num_facilities=60, num_cost_types=3, num_queries=6, seed=31)
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        service = MonitoringService(
            workload.graph, facilities, parallel=parallel, shard_fallback_threshold=threshold
        )
        sids = []
        for index, query in enumerate(workload.queries):
            if index % 2 == 0:
                sids.append(service.subscribe(SkylineRequest(query)))
            else:
                sids.append(service.subscribe(TopKRequest(query, k=3, weights=(0.5, 0.3, 0.2))))
        stream = make_update_stream(
            workload.graph,
            workload.facilities,
            UpdateStreamSpec(num_ticks=8, updates_per_tick=5, seed=32),
            subscription_ids=sids,
        )
        return service, sids, stream

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sharded_fallback_matches_sequential(self, executor):
        sequential, sids, stream = self.build(parallel=None)
        sharded, _sids, _stream = self.build(
            parallel=ParallelExecution(workers=3, executor=executor), threshold=2
        )
        sharded_ticks = 0
        for tick in stream:
            report_seq = sequential.apply_tick(tick)
            report_par = sharded.apply_tick(tick)
            if report_par.sharded:
                sharded_ticks += 1
            for sid in sids:
                assert sequential.result_signature(sid) == sharded.result_signature(sid)
            assert [delta_report_to_payload(d) for d in report_seq.deltas] == [
                delta_report_to_payload(d) for d in report_par.deltas
            ]
        assert sharded_ticks > 0, "no tick went stale enough to shard the fallback"

    def test_below_threshold_stays_sequential(self):
        service, sids, _stream = self.build(
            parallel=ParallelExecution(workers=2, executor="serial"), threshold=50
        )
        member = next(iter(service.result_signature(sids[0])))
        report = service.apply_tick(UpdateTick((FacilityDelete(member),)))
        assert not report.sharded


def oracle_signature(service, sid, request):
    vectors = facility_vectors(
        service.graph, service.facilities, service.maintainer_of(sid).query
    )
    if isinstance(request, SkylineRequest):
        return exact_skyline(vectors)
    maintainer = service.maintainer_of(sid)
    return [
        round(score, 6)
        for _fid, score in exact_top_k(vectors, maintainer.aggregate, maintainer.k)
    ]


def observed_signature(service, sid, request):
    maintainer = service.maintainer_of(sid)
    if isinstance(request, SkylineRequest):
        return maintainer.skyline_ids()
    return [round(score, 6) for _fid, score in maintainer.ranking()]


_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

noop_instance = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_nodes": st.integers(min_value=8, max_value=30),
        "extra_edges": st.integers(min_value=0, max_value=25),
        "num_facilities": st.integers(min_value=3, max_value=12),
        "unrelated": st.integers(min_value=0, max_value=4),
        "split_ticks": st.booleans(),
    }
)


class TestInsertDeleteNoOpProperty:
    """A facility insert followed by its own delete is a no-op on every
    subscription, even with unrelated updates interleaved (the PR's
    property-test satellite)."""

    @_SETTINGS
    @given(noop_instance)
    def test_insert_then_delete_is_noop(self, params):
        seed = params["seed"]
        graph, base = random_mcn(
            num_nodes=params["num_nodes"],
            num_edges=params["num_nodes"] - 1 + params["extra_edges"],
            num_cost_types=2,
            num_facilities=params["num_facilities"],
            seed=seed,
        )
        rng = random.Random(seed + 7)
        edges = list(graph.edges())

        def fresh_service():
            facilities = FacilitySet(graph, iter(base))
            service = MonitoringService(graph, facilities)
            requests = [
                SkylineRequest(random_query(graph, seed + 1)),
                TopKRequest(random_query(graph, seed + 2), k=3, weights=(0.6, 0.4)),
            ]
            sids = [service.subscribe(request) for request in requests]
            return service, sids, requests

        # Unrelated interleaved updates, identical in both runs.
        unrelated = []
        live = set(base.facility_ids())
        for index in range(params["unrelated"]):
            edge = rng.choice(edges)
            if rng.random() < 0.5 or len(live) <= 2:
                new_id = 1000 + index
                unrelated.append(FacilityInsert(new_id, edge.edge_id, rng.uniform(0, edge.length)))
                live.add(new_id)
            else:
                victim = rng.choice(sorted(live))
                unrelated.append(FacilityDelete(victim))
                live.remove(victim)

        probe_edge = rng.choice(edges)
        insert_x = FacilityInsert(999, probe_edge.edge_id, rng.uniform(0, probe_edge.length))
        half = len(unrelated) // 2
        with_x = list(unrelated[:half]) + [insert_x] + list(unrelated[half:]) + [FacilityDelete(999)]
        without_x = list(unrelated)

        def apply(service, updates):
            if params["split_ticks"] and len(updates) > 1:
                middle = len(updates) // 2
                # X's insert and delete may land in different ticks; the
                # no-op property must hold across tick boundaries too.
                service.apply_tick(UpdateTick(tuple(updates[:middle])))
                service.apply_tick(UpdateTick(tuple(updates[middle:])))
            elif updates:
                service.apply_tick(UpdateTick(tuple(updates)))

        service_a, sids_a, requests = fresh_service()
        service_b, sids_b, _ = fresh_service()
        apply(service_a, with_x)
        apply(service_b, without_x)

        for sid_a, sid_b, request in zip(sids_a, sids_b, requests):
            assert observed_signature(service_a, sid_a, request) == observed_signature(
                service_b, sid_b, request
            )
            # Both must also equal the brute-force oracle over the final set.
            oracle = oracle_signature(service_a, sid_a, request)
            if isinstance(request, SkylineRequest):
                assert observed_signature(service_a, sid_a, request) == oracle
            else:
                assert observed_signature(service_a, sid_a, request) == oracle

        # Counters stay consistent: the A run saw exactly one extra insert
        # and one extra delete per subscription, and both runs agree on the
        # final facility population.
        stats_a, stats_b = service_a.statistics, service_b.statistics
        subs = len(sids_a)
        assert stats_a.insertions == stats_b.insertions + subs
        assert stats_a.deletions == stats_b.deletions + subs
        assert set(service_a.facilities.facility_ids()) == set(
            service_b.facilities.facility_ids()
        )
