"""Regenerate the golden workload and delta-stream fixtures.

Run from the repo root after an *intentional* change to query results or I/O
accounting::

    PYTHONPATH=src python tests/fixtures/regenerate.py

Each ``golden_*`` fixture pins one small workload — the deterministic
generation spec, the serialized request trace, every query's exact answer
and the sequential batch's page-read/buffer-hit totals — so any future
change that silently alters answers or regresses I/O accounting fails
``tests/test_golden_regression.py`` and has to be acknowledged by re-running
this script and committing the diff.

Each ``delta_stream_*`` fixture pins one monitoring run — the workload and
update-stream specs, the subscription trace, the generated stream itself and
every tick's :class:`~repro.monitor.DeltaReport`\\ s *plus* the
incremental-vs-fallback maintenance-path counters — so a change that routes
updates down a different maintenance path is caught by
``tests/test_golden_deltas.py`` even when the final answers stay correct.

Each ``temporal_*`` fixture pins one temporal run twice over: the
departure-time answers and sweep stable intervals a profile-registered
:class:`~repro.api.Session` produces (on a pristine workload), and the
per-tick delta reports of replaying the matching rush-hour edge-cost stream
through a :class:`~repro.monitor.MonitoringService` — so both halves of the
temporal subsystem (snapshot execution and edge-cost maintenance) are
pinned by ``tests/test_golden_temporal.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import MCNQueryEngine
from repro.datagen import (
    EdgeCostStreamSpec,
    UpdateStreamSpec,
    WorkloadSpec,
    edge_cost_stream_spec_to_payload,
    make_edge_cost_stream,
    make_profile_network,
    make_update_stream,
    make_workload,
    update_stream_spec_to_payload,
    workload_spec_to_payload,
)
from repro.monitor import MonitoringService, stream_to_payload, tick_report_to_payload
from repro.network.facilities import FacilitySet
from repro.service import QueryService, SkylineRequest, TopKRequest
from repro.service.requests import encode_requests
from repro.storage.scheme import NetworkStorage

FIXTURES_DIR = Path(__file__).resolve().parent

#: name -> (workload spec, storage knobs, trace builder)
CASES = {
    "golden_mixed_d2": dict(
        spec=WorkloadSpec(
            num_nodes=150,
            num_facilities=60,
            num_cost_types=2,
            clustered=True,
            num_queries=10,
            seed=21,
        ),
        page_size=1024,
        buffer_fraction=0.01,
        mix="mixed",
        k=3,
    ),
    "golden_topk_d3": dict(
        spec=WorkloadSpec(
            num_nodes=180,
            num_facilities=70,
            num_cost_types=3,
            clustered=False,
            num_queries=8,
            seed=35,
        ),
        page_size=2048,
        buffer_fraction=0.0,
        mix="topk",
        k=4,
    ),
}


def build_trace(workload, mix: str, k: int):
    requests = []
    for index, query in enumerate(workload.queries):
        as_skyline = mix == "skyline" or (mix == "mixed" and index % 2 == 0)
        if as_skyline:
            requests.append(SkylineRequest(query))
        else:
            dims = workload.graph.num_cost_types
            weights = tuple(round((i + index % 3 + 1.0) / (dims + 2), 6) for i in range(dims))
            requests.append(TopKRequest(query, k, weights=weights))
    return requests


def result_payload(request, result):
    if isinstance(request, SkylineRequest):
        return {
            "type": "skyline",
            "facilities": [[f.facility_id, list(f.costs)] for f in result],
        }
    return {
        "type": "topk",
        "facilities": [[f.facility_id, f.score] for f in result],
    }


def regenerate_case(name: str, case: dict) -> Path:
    workload = make_workload(case["spec"])
    storage = NetworkStorage.build(
        workload.graph,
        workload.facilities,
        page_size=case["page_size"],
        buffer_fraction=case["buffer_fraction"],
    )
    engine = MCNQueryEngine(workload.graph, workload.facilities, storage=storage)
    requests = build_trace(workload, case["mix"], case["k"])
    report = QueryService(engine).run_batch(requests)
    fixture = {
        "name": name,
        "page_size": case["page_size"],
        "buffer_fraction": case["buffer_fraction"],
        "workload": workload_spec_to_payload(case["spec"]),
        "requests": encode_requests(requests),
        "expected": {
            "page_reads": report.io.page_reads,
            "buffer_hits": report.io.buffer_hits,
            "results": [
                result_payload(outcome.request, outcome.result) for outcome in report.outcomes
            ],
        },
    }
    path = FIXTURES_DIR / f"{name}.json"
    path.write_text(json.dumps(fixture, indent=1) + "\n")
    return path


#: name -> (workload spec, stream spec, subscription shape) for delta fixtures
MONITOR_CASES = {
    "delta_stream_d2": dict(
        spec=WorkloadSpec(
            num_nodes=150,
            num_facilities=60,
            num_cost_types=2,
            clustered=True,
            num_queries=6,
            seed=51,
        ),
        stream=UpdateStreamSpec(num_ticks=12, updates_per_tick=4, seed=52),
        mix="mixed",
        k=3,
    ),
    "delta_stream_d3": dict(
        spec=WorkloadSpec(
            num_nodes=180,
            num_facilities=70,
            num_cost_types=3,
            clustered=False,
            num_queries=5,
            seed=53,
        ),
        stream=UpdateStreamSpec(
            num_ticks=10,
            updates_per_tick=5,
            insert_fraction=0.4,
            delete_fraction=0.4,
            relocate_fraction=0.2,
            seed=54,
        ),
        mix="topk",
        k=4,
    ),
}


def regenerate_monitor_case(name: str, case: dict) -> Path:
    workload = make_workload(case["spec"])
    facilities = FacilitySet(workload.graph, iter(workload.facilities))
    service = MonitoringService(workload.graph, facilities)
    requests = build_trace(workload, case["mix"], case["k"])
    sids = [service.subscribe(request) for request in requests]
    stream = make_update_stream(
        workload.graph, workload.facilities, case["stream"], subscription_ids=sids
    )
    reports = service.run(stream)
    counters = service.statistics
    fixture = {
        "name": name,
        "workload": workload_spec_to_payload(case["spec"]),
        "stream_spec": update_stream_spec_to_payload(case["stream"]),
        "requests": encode_requests(requests),
        "stream": stream_to_payload(stream),
        "expected": {
            "ticks": [tick_report_to_payload(report) for report in reports],
            "final_counters": {
                "insertions": counters.insertions,
                "deletions": counters.deletions,
                "incremental_updates": counters.incremental_updates,
                "recomputations": counters.recomputations,
                "query_moves": counters.query_moves,
            },
        },
    }
    path = FIXTURES_DIR / f"{name}.json"
    path.write_text(json.dumps(fixture, indent=1) + "\n")
    return path


#: name -> (workload spec, edge-cost stream spec, probe times) for the
#: temporal fixtures
TEMPORAL_CASES = {
    "temporal_rush_d2": dict(
        spec=WorkloadSpec(
            num_nodes=150,
            num_facilities=60,
            num_cost_types=2,
            clustered=True,
            num_queries=4,
            seed=61,
        ),
        stream=EdgeCostStreamSpec(
            num_ticks=8, start_time=6.0, time_step=0.5, affected_fraction=0.2, seed=62
        ),
        departure_times=(6.0, 7.0, 8.0, 9.5),
        sweep_times=(6.0, 6.5, 7.0, 7.5, 8.0, 8.5, 9.0),
        mix="mixed",
        k=3,
    ),
    "temporal_rush_d3": dict(
        spec=WorkloadSpec(
            num_nodes=120,
            num_facilities=45,
            num_cost_types=3,
            clustered=False,
            num_queries=3,
            seed=63,
        ),
        stream=EdgeCostStreamSpec(
            num_ticks=6,
            start_time=7.0,
            time_step=0.5,
            affected_fraction=0.3,
            peak_multiplier=2.5,
            seed=64,
        ),
        departure_times=(7.0, 8.0, 9.0),
        sweep_times=(7.0, 7.5, 8.0, 8.5, 9.5),
        mix="topk",
        k=4,
    ),
}


def regenerate_temporal_case(name: str, case: dict) -> Path:
    from dataclasses import replace

    from repro.api import ExecutionPolicy, Session
    from repro.datagen.updates import make_profile_network
    from repro.serve.payloads import io_to_payload
    from repro.temporal import (
        SkylineSweepRequest,
        TopKSweepRequest,
        stable_interval_to_payload,
        timed_result_to_payload,
    )

    # --- Half one: departure-time answers on a pristine workload. --------- #
    workload = make_workload(case["spec"])
    network = make_profile_network(workload.graph, case["stream"])
    policy = ExecutionPolicy(temporal="profiles", profile_source="rush")
    base_requests = build_trace(workload, case["mix"], case["k"])
    answers = []
    sweeps = []
    with Session(
        workload.graph, workload.facilities, profiles={"rush": network}
    ) as session:
        for request in base_requests:
            for departure_time in case["departure_times"]:
                timed = replace(request, departure_time=departure_time)
                response = session.query(timed, policy=policy)
                answers.append(
                    {
                        "departure_time": departure_time,
                        "result": result_payload(request, response.result),
                        "io": io_to_payload(response.io),
                    }
                )
        for request in base_requests:
            if isinstance(request, SkylineRequest):
                sweep_request = SkylineSweepRequest(
                    request.location, case["sweep_times"]
                )
            else:
                sweep_request = TopKSweepRequest(
                    request.location,
                    request.k,
                    case["sweep_times"],
                    weights=request.weights,
                    aggregate=request.aggregate,
                )
            response = session.sweep(sweep_request, policy=policy)
            sweeps.append(
                {
                    "results": [
                        timed_result_to_payload(result) for result in response.results
                    ],
                    "intervals": [
                        stable_interval_to_payload(interval)
                        for interval in response.intervals
                    ],
                }
            )

    # --- Half two: the matching edge-cost stream through the monitor. ----- #
    workload = make_workload(case["spec"])  # fresh: half one must not leak state
    facilities = FacilitySet(workload.graph, iter(workload.facilities))
    service = MonitoringService(workload.graph, facilities)
    for request in build_trace(workload, case["mix"], case["k"]):
        service.subscribe(request)
    stream = make_edge_cost_stream(workload.graph, case["stream"])
    reports = service.run(stream)
    counters = service.statistics

    fixture = {
        "name": name,
        "workload": workload_spec_to_payload(case["spec"]),
        "stream_spec": edge_cost_stream_spec_to_payload(case["stream"]),
        "departure_times": list(case["departure_times"]),
        "sweep_times": list(case["sweep_times"]),
        "requests": encode_requests(base_requests),
        "stream": stream_to_payload(stream),
        "expected": {
            "answers": answers,
            "sweeps": sweeps,
            "ticks": [tick_report_to_payload(report) for report in reports],
            "final_counters": {
                "recomputations": counters.recomputations,
                "edge_cost_refreshes": counters.edge_cost_refreshes,
            },
        },
    }
    path = FIXTURES_DIR / f"{name}.json"
    path.write_text(json.dumps(fixture, indent=1) + "\n")
    return path


def regenerate_serve_surface() -> Path:
    """Pin the serving tier's wire surface (routes, schemas, error shape).

    The fixture is transport-independent data from
    :meth:`repro.serve.ServeApp.describe_surface`; a route/schema change
    must regenerate it in the same commit, so the diff is reviewable.
    """
    from repro.api import Session
    from repro.serve import ServeApp

    workload = make_workload(
        WorkloadSpec(
            num_nodes=20, num_facilities=5, num_cost_types=2, num_queries=1, seed=1
        )
    )
    with Session(workload.graph, workload.facilities) as session:
        surface = ServeApp(session).describe_surface()
    path = FIXTURES_DIR / "serve_surface.json"
    path.write_text(json.dumps(surface, indent=1, sort_keys=True) + "\n")
    return path


def main() -> None:
    for name, case in CASES.items():
        path = regenerate_case(name, case)
        print(f"wrote {path}")
    for name, case in MONITOR_CASES.items():
        path = regenerate_monitor_case(name, case)
        print(f"wrote {path}")
    for name, case in TEMPORAL_CASES.items():
        path = regenerate_temporal_case(name, case)
        print(f"wrote {path}")
    print(f"wrote {regenerate_serve_surface()}")


if __name__ == "__main__":
    main()
