"""Unit tests for network locations (query points on nodes or edges)."""

from __future__ import annotations

import pytest

from repro.errors import LocationError
from repro.network.facilities import Facility
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation


@pytest.fixture
def graph() -> MultiCostGraph:
    graph = MultiCostGraph(2)
    graph.add_node(0, 0.0, 0.0)
    graph.add_node(1, 10.0, 0.0)
    graph.add_edge(0, 1, [10.0, 4.0], length=10.0)
    return graph


class TestConstructionAndValidation:
    def test_node_location(self, graph):
        location = NetworkLocation.at_node(0)
        location.validate(graph)
        assert location.is_node

    def test_edge_location(self, graph):
        location = NetworkLocation.on_edge(0, 4.0)
        location.validate(graph)
        assert not location.is_node

    def test_of_facility(self, graph):
        facility = Facility(3, 0, 2.5)
        location = NetworkLocation.of_facility(facility)
        assert location.edge_id == 0 and location.offset == 2.5

    def test_unknown_node_rejected(self, graph):
        with pytest.raises(LocationError):
            NetworkLocation.at_node(99).validate(graph)

    def test_unknown_edge_rejected(self, graph):
        with pytest.raises(LocationError):
            NetworkLocation.on_edge(99, 0.0).validate(graph)

    def test_offset_outside_edge_rejected(self, graph):
        with pytest.raises(LocationError):
            NetworkLocation.on_edge(0, 11.0).validate(graph)

    def test_empty_location_rejected(self, graph):
        with pytest.raises(LocationError):
            NetworkLocation().validate(graph)

    def test_node_and_edge_simultaneously_rejected(self, graph):
        with pytest.raises(LocationError):
            NetworkLocation(node_id=0, edge_id=0).validate(graph)


class TestAnchors:
    def test_node_anchor_is_zero_cost(self, graph):
        anchors = NetworkLocation.at_node(1).anchor_costs(graph)
        assert anchors == [(1, (0.0, 0.0))] or anchors[0][1].values == (0.0, 0.0)

    def test_edge_anchors_prorate_costs(self, graph):
        anchors = dict(NetworkLocation.on_edge(0, 2.0).anchor_costs(graph))
        assert anchors[0].values == pytest.approx((2.0, 0.8))
        assert anchors[1].values == pytest.approx((8.0, 3.2))

    def test_edge_anchor_costs_sum_to_edge_costs(self, graph):
        anchors = dict(NetworkLocation.on_edge(0, 3.5).anchor_costs(graph))
        total = anchors[0] + anchors[1]
        assert total.values == pytest.approx((10.0, 4.0))

    def test_directed_edge_has_single_anchor(self):
        graph = MultiCostGraph(1, directed=True)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [10.0], length=10.0)
        anchors = NetworkLocation.on_edge(0, 4.0).anchor_costs(graph)
        assert len(anchors) == 1
        assert anchors[0][0] == 1
        assert anchors[0][1].values == pytest.approx((6.0,))

    def test_anchor_validation_runs_first(self, graph):
        with pytest.raises(LocationError):
            NetworkLocation.on_edge(5, 1.0).anchor_costs(graph)


class TestSameEdgeCosts:
    def test_direct_cost_on_same_edge(self, graph):
        location = NetworkLocation.on_edge(0, 2.0)
        costs = location.costs_to_point_on_same_edge(graph, 7.0)
        assert costs.values == pytest.approx((5.0, 2.0))

    def test_direct_cost_is_symmetric_in_offsets(self, graph):
        forward = NetworkLocation.on_edge(0, 2.0).costs_to_point_on_same_edge(graph, 7.0)
        backward = NetworkLocation.on_edge(0, 7.0).costs_to_point_on_same_edge(graph, 2.0)
        assert forward.values == pytest.approx(backward.values)

    def test_node_location_has_no_same_edge_cost(self, graph):
        assert NetworkLocation.at_node(0).costs_to_point_on_same_edge(graph, 5.0) is None


class TestDescribe:
    def test_describe_node(self, graph):
        assert "node 0" in NetworkLocation.at_node(0).describe(graph)

    def test_describe_edge(self, graph):
        text = NetworkLocation.on_edge(0, 4.0).describe(graph)
        assert "edge 0" in text and "4.00" in text
