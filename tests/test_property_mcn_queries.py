"""Property-based tests of the MCN preference queries against brute-force oracles.

Random connected networks (with and without exact cost ties) are generated
from hypothesis-drawn seeds; LSA, CEA and the incremental iterator must all
agree with the brute-force computation on every instance.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.aggregates import WeightedSum
from repro.core.incremental import IncrementalTopK
from repro.core.skyline import MCNSkylineSearch
from repro.core.topk import MCNTopKSearch
from repro.network import InMemoryAccessor
from tests.helpers import exact_skyline, exact_top_k, facility_vectors, random_mcn, random_query

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

instance = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "num_nodes": st.integers(min_value=6, max_value=45),
        "extra_edges": st.integers(min_value=0, max_value=40),
        "num_cost_types": st.integers(min_value=1, max_value=4),
        "num_facilities": st.integers(min_value=1, max_value=20),
        "integer_costs": st.booleans(),
    }
)


def build_instance(params):
    graph, facilities = random_mcn(
        num_nodes=params["num_nodes"],
        num_edges=params["num_nodes"] - 1 + params["extra_edges"],
        num_cost_types=params["num_cost_types"],
        num_facilities=params["num_facilities"],
        seed=params["seed"],
        integer_costs=params["integer_costs"],
    )
    query = random_query(graph, seed=params["seed"] + 1)
    return graph, facilities, query


class TestSkylineProperties:
    @_SETTINGS
    @given(instance)
    def test_lsa_matches_brute_force(self, params):
        graph, facilities, query = build_instance(params)
        truth = exact_skyline(facility_vectors(graph, facilities, query))
        search = MCNSkylineSearch(InMemoryAccessor(graph, facilities), graph, query)
        assert search.run().facility_ids() == truth

    @_SETTINGS
    @given(instance)
    def test_cea_matches_brute_force(self, params):
        graph, facilities, query = build_instance(params)
        truth = exact_skyline(facility_vectors(graph, facilities, query))
        search = MCNSkylineSearch(
            InMemoryAccessor(graph, facilities), graph, query, share_accesses=True
        )
        assert search.run().facility_ids() == truth

    @_SETTINGS
    @given(instance)
    def test_reported_cost_vectors_are_correct(self, params):
        graph, facilities, query = build_instance(params)
        truth = facility_vectors(graph, facilities, query)
        result = MCNSkylineSearch(InMemoryAccessor(graph, facilities), graph, query).run()
        for member in result:
            for index, value in enumerate(member.costs):
                if value is not None:
                    assert abs(value - truth[member.facility_id][index]) < 1e-6

    @_SETTINGS
    @given(instance)
    def test_skyline_members_are_mutually_non_dominated(self, params):
        from repro.network.costs import dominates

        graph, facilities, query = build_instance(params)
        truth = facility_vectors(graph, facilities, query)
        result = MCNSkylineSearch(InMemoryAccessor(graph, facilities), graph, query).run()
        members = list(result.facility_ids())
        for first in members:
            for second in members:
                if first != second:
                    assert not dominates(truth[first], truth[second])


class TestTopKProperties:
    @_SETTINGS
    @given(instance, st.integers(min_value=1, max_value=6))
    def test_topk_matches_brute_force(self, params, k):
        graph, facilities, query = build_instance(params)
        aggregate = WeightedSum.random(graph.num_cost_types, random.Random(params["seed"]))
        truth = exact_top_k(facility_vectors(graph, facilities, query), aggregate, k)
        expected_scores = [round(score, 6) for _fid, score in truth]
        for share in (False, True):
            result = MCNTopKSearch(
                InMemoryAccessor(graph, facilities), graph, query, aggregate, k, share_accesses=share
            ).run()
            assert [round(score, 6) for score in result.scores()] == expected_scores

    @_SETTINGS
    @given(instance)
    def test_incremental_enumeration_is_sorted_and_complete(self, params):
        graph, facilities, query = build_instance(params)
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        iterator = IncrementalTopK(InMemoryAccessor(graph, facilities), graph, query, aggregate)
        results = list(iterator)
        scores = [item.score for item in results]
        assert scores == sorted(scores)
        assert len(results) == len(facility_vectors(graph, facilities, query))

    @_SETTINGS
    @given(instance, st.integers(min_value=1, max_value=5))
    def test_top1_is_skyline_member(self, params, weight_seed):
        graph, facilities, query = build_instance(params)
        if not len(facilities):
            return
        aggregate = WeightedSum.random(graph.num_cost_types, random.Random(weight_seed))
        skyline = MCNSkylineSearch(InMemoryAccessor(graph, facilities), graph, query).run()
        top1 = MCNTopKSearch(InMemoryAccessor(graph, facilities), graph, query, aggregate, 1).run()
        if top1.facilities:
            top_score = top1.scores()[0]
            truth = facility_vectors(graph, facilities, query)
            skyline_best = min(aggregate(truth[fid]) for fid in skyline.facility_ids())
            assert top_score <= skyline_best + 1e-9
