"""Unit tests for the disk-resident NetworkStorage accessor (Figure-2 scheme)."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.network import InMemoryAccessor
from repro.storage import NetworkStorage, StorageConfig


@pytest.fixture
def storage(tiny_graph, tiny_facilities) -> NetworkStorage:
    return NetworkStorage.build(tiny_graph, tiny_facilities, page_size=256, buffer_fraction=0.5)


class TestConstruction:
    def test_build_convenience_constructor(self, tiny_graph, tiny_facilities):
        storage = NetworkStorage.build(tiny_graph, tiny_facilities, page_size=512, buffer_fraction=0.02)
        assert storage.config.page_size == 512
        assert storage.config.buffer_fraction == 0.02

    def test_invalid_page_size_rejected(self):
        with pytest.raises(StorageError):
            StorageConfig(page_size=0)

    def test_negative_buffer_fraction_rejected(self):
        with pytest.raises(StorageError):
            StorageConfig(buffer_fraction=-0.1)

    def test_zero_buffer_fraction_gives_zero_capacity(self, tiny_graph, tiny_facilities):
        storage = NetworkStorage.build(tiny_graph, tiny_facilities, buffer_fraction=0.0)
        assert storage.buffer.capacity == 0

    def test_positive_buffer_fraction_gives_at_least_one_frame(self, tiny_graph, tiny_facilities):
        storage = NetworkStorage.build(tiny_graph, tiny_facilities, page_size=4096, buffer_fraction=0.001)
        assert storage.buffer.capacity >= 1

    def test_describe_reports_page_counts(self, storage):
        description = storage.describe()
        assert description["mcn_pages"] == (
            description["adjacency_file_pages"] + description["adjacency_tree_pages"]
        )
        assert description["total_pages"] == storage.total_page_count


class TestAccessorEquivalence:
    """The disk accessor must return exactly what the in-memory accessor returns."""

    def test_adjacency_matches_memory(self, storage, tiny_graph, tiny_facilities):
        memory = InMemoryAccessor(tiny_graph, tiny_facilities)
        for node in tiny_graph.nodes():
            from_disk = sorted(storage.adjacency(node.node_id))
            from_memory = sorted(memory.adjacency(node.node_id))
            assert from_disk == from_memory

    def test_edge_facilities_match_memory(self, storage, tiny_graph, tiny_facilities):
        memory = InMemoryAccessor(tiny_graph, tiny_facilities)
        for edge in tiny_graph.edges():
            assert storage.edge_facilities(edge.edge_id) == memory.edge_facilities(edge.edge_id)

    def test_facility_edge_matches_memory(self, storage, tiny_graph, tiny_facilities):
        memory = InMemoryAccessor(tiny_graph, tiny_facilities)
        for facility in tiny_facilities:
            assert storage.facility_edge(facility.facility_id) == memory.facility_edge(facility.facility_id)

    def test_num_cost_types(self, storage):
        assert storage.num_cost_types == 2


class TestErrorHandling:
    def test_unknown_node_raises(self, storage):
        with pytest.raises(StorageError):
            storage.adjacency(999)

    def test_unknown_facility_raises(self, storage):
        with pytest.raises(StorageError):
            storage.facility_edge(999)

    def test_edge_without_facilities_returns_empty(self, storage, tiny_graph):
        empty_edge = tiny_graph.edge_between(0, 3)
        assert storage.edge_facilities(empty_edge.edge_id) == []


class TestIOAccounting:
    def test_adjacency_request_counts_page_reads(self, storage):
        storage.reset_statistics(clear_buffer=True)
        storage.adjacency(4)
        stats = storage.statistics
        assert stats.adjacency_requests == 1
        assert stats.page_reads >= 2  # at least index root + one data page

    def test_buffer_hits_on_repeated_access(self, storage):
        storage.reset_statistics(clear_buffer=True)
        storage.adjacency(4)
        first_reads = storage.statistics.page_reads
        storage.adjacency(4)
        second = storage.statistics
        assert second.buffer_hits > 0
        assert second.page_reads <= 2 * first_reads

    def test_zero_buffer_never_hits(self, tiny_graph, tiny_facilities):
        storage = NetworkStorage.build(tiny_graph, tiny_facilities, buffer_fraction=0.0)
        storage.adjacency(4)
        storage.adjacency(4)
        assert storage.statistics.buffer_hits == 0
        assert storage.statistics.page_reads > 0

    def test_reset_statistics(self, storage):
        storage.adjacency(4)
        storage.reset_statistics()
        stats = storage.statistics
        assert stats.page_reads == 0
        assert stats.adjacency_requests == 0

    def test_reset_with_clear_buffer_forces_cold_reads(self, storage):
        storage.adjacency(4)
        storage.reset_statistics(clear_buffer=True)
        storage.adjacency(4)
        assert storage.statistics.page_reads > 0

    def test_facility_tree_probe_counts(self, storage):
        storage.reset_statistics(clear_buffer=True)
        storage.facility_edge(1)
        assert storage.statistics.facility_tree_requests == 1
        assert storage.statistics.page_reads >= 1


class TestLargerNetworkRoundTrip:
    def test_generated_workload_round_trips(self, small_workload):
        storage = NetworkStorage.build(
            small_workload.graph, small_workload.facilities, page_size=512, buffer_fraction=0.01
        )
        memory = InMemoryAccessor(small_workload.graph, small_workload.facilities)
        for node in list(small_workload.graph.nodes())[::17]:
            assert sorted(storage.adjacency(node.node_id)) == sorted(memory.adjacency(node.node_id))
        for facility in list(small_workload.facilities)[::13]:
            assert storage.facility_edge(facility.facility_id) == facility.edge_id

    def test_mcn_page_count_grows_with_network(self, small_workload, tiny_graph, tiny_facilities):
        small_storage = NetworkStorage.build(tiny_graph, tiny_facilities, page_size=512)
        large_storage = NetworkStorage.build(
            small_workload.graph, small_workload.facilities, page_size=512
        )
        assert large_storage.mcn_page_count > small_storage.mcn_page_count
