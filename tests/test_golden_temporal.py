"""Golden temporal fixtures: departure-time answers and edge-tick deltas pinned.

Each ``tests/fixtures/temporal_rush_*.json`` file pins one temporal run twice
over.  Half one replays the *execution* side: a profile-registered
:class:`~repro.api.Session` under ``temporal="profiles"`` must keep producing
the exact per-departure-time answers (results **and** I/O counters) and the
exact sweep stable intervals the fixture stores.  Half two replays the
*maintenance* side: the matching rush-hour edge-cost stream pushed through a
:class:`~repro.monitor.MonitoringService` must keep emitting the pinned
per-tick delta reports and path counters.  An intentional change must re-run
``tests/fixtures/regenerate.py`` and commit the diff.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import ExecutionPolicy, Session
from repro.datagen import (
    edge_cost_stream_spec_from_payload,
    make_edge_cost_stream,
    make_profile_network,
    make_workload,
    workload_spec_from_payload,
)
from repro.monitor import (
    MonitoringService,
    stream_from_payload,
    stream_to_payload,
    tick_report_to_payload,
)
from repro.network.facilities import FacilitySet
from repro.serve.payloads import io_to_payload
from repro.service.requests import SkylineRequest, decode_requests
from repro.temporal import (
    SkylineSweepRequest,
    TopKSweepRequest,
    stable_interval_to_payload,
    timed_result_to_payload,
)

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
FIXTURE_PATHS = sorted(FIXTURES_DIR.glob("temporal_rush_*.json"))


def load_fixture(path: Path) -> dict:
    return json.loads(path.read_text())


def result_payload(request, result) -> dict:
    if isinstance(request, SkylineRequest):
        return {
            "type": "skyline",
            "facilities": [[f.facility_id, list(f.costs)] for f in result],
        }
    return {
        "type": "topk",
        "facilities": [[f.facility_id, f.score] for f in result],
    }


def test_temporal_fixtures_are_checked_in():
    assert FIXTURE_PATHS, "temporal fixtures missing; run tests/fixtures/regenerate.py"


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
class TestGoldenTemporal:
    def test_departure_time_answers_are_pinned(self, path):
        """Answers AND I/O per (request, departure time) must match exactly."""
        fixture = load_fixture(path)
        workload = make_workload(workload_spec_from_payload(fixture["workload"]))
        network = make_profile_network(
            workload.graph,
            edge_cost_stream_spec_from_payload(fixture["stream_spec"]),
        )
        policy = ExecutionPolicy(temporal="profiles", profile_source="rush")
        requests = decode_requests(fixture["requests"])
        expected = iter(fixture["expected"]["answers"])
        with Session(
            workload.graph, workload.facilities, profiles={"rush": network}
        ) as session:
            for request in requests:
                for departure_time in fixture["departure_times"]:
                    response = session.query(
                        replace(request, departure_time=departure_time), policy=policy
                    )
                    pinned = next(expected)
                    assert pinned["departure_time"] == departure_time
                    assert result_payload(request, response.result) == pinned["result"]
                    assert io_to_payload(response.io) == pinned["io"]

    def test_sweep_results_and_intervals_are_pinned(self, path):
        fixture = load_fixture(path)
        workload = make_workload(workload_spec_from_payload(fixture["workload"]))
        network = make_profile_network(
            workload.graph,
            edge_cost_stream_spec_from_payload(fixture["stream_spec"]),
        )
        policy = ExecutionPolicy(temporal="profiles", profile_source="rush")
        requests = decode_requests(fixture["requests"])
        times = tuple(fixture["sweep_times"])
        with Session(
            workload.graph, workload.facilities, profiles={"rush": network}
        ) as session:
            for request, pinned in zip(requests, fixture["expected"]["sweeps"]):
                if isinstance(request, SkylineRequest):
                    sweep_request = SkylineSweepRequest(request.location, times)
                else:
                    sweep_request = TopKSweepRequest(
                        request.location,
                        request.k,
                        times,
                        weights=request.weights,
                        aggregate=request.aggregate,
                    )
                response = session.sweep(sweep_request, policy=policy)
                assert [
                    timed_result_to_payload(result) for result in response.results
                ] == pinned["results"]
                assert [
                    stable_interval_to_payload(interval)
                    for interval in response.intervals
                ] == pinned["intervals"]

    def test_stream_generation_is_pinned(self, path):
        fixture = load_fixture(path)
        workload = make_workload(workload_spec_from_payload(fixture["workload"]))
        stream = make_edge_cost_stream(
            workload.graph, edge_cost_stream_spec_from_payload(fixture["stream_spec"])
        )
        assert stream_to_payload(stream) == fixture["stream"]

    def test_edge_tick_replay_emits_pinned_deltas_and_counters(self, path):
        fixture = load_fixture(path)
        workload = make_workload(workload_spec_from_payload(fixture["workload"]))
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        service = MonitoringService(workload.graph, facilities)
        for request in decode_requests(fixture["requests"]):
            service.subscribe(request)
        reports = service.run(stream_from_payload(fixture["stream"]))
        expected_ticks = fixture["expected"]["ticks"]
        assert len(reports) == len(expected_ticks)
        for report, pinned in zip(reports, expected_ticks):
            assert tick_report_to_payload(report) == pinned
        counters = service.statistics
        pinned_counters = fixture["expected"]["final_counters"]
        assert counters.recomputations == pinned_counters["recomputations"]
        assert counters.edge_cost_refreshes == pinned_counters["edge_cost_refreshes"]
