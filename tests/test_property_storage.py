"""Property-based tests for the storage layer (buffer, B+ tree, full scheme)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.network import InMemoryAccessor
from repro.storage.btree import StaticBPlusTree
from repro.storage.buffer import LRUBufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.pages import PageKind
from repro.storage.scheme import NetworkStorage
from tests.helpers import random_mcn

_SETTINGS = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestBufferProperties:
    @_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=200),
        st.integers(min_value=0, max_value=12),
    )
    def test_requests_equal_hits_plus_misses(self, pattern, capacity):
        disk = SimulatedDisk(page_size=64)
        for _ in range(10):
            disk.allocate(PageKind.ADJACENCY)
        pool = LRUBufferPool(disk, capacity=capacity)
        for page_id in pattern:
            pool.read(page_id)
        stats = pool.statistics
        assert stats.requests == len(pattern)
        assert stats.hits + stats.misses == stats.requests
        assert stats.misses == disk.statistics.page_reads
        assert pool.resident_pages <= max(capacity, 0)

    @_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=150))
    def test_bigger_buffers_never_hurt(self, pattern):
        misses = []
        for capacity in (0, 1, 2, 4, 10):
            disk = SimulatedDisk(page_size=64)
            for _ in range(10):
                disk.allocate(PageKind.ADJACENCY)
            pool = LRUBufferPool(disk, capacity=capacity)
            for page_id in pattern:
                pool.read(page_id)
            misses.append(pool.statistics.misses)
        assert misses == sorted(misses, reverse=True)

    @_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=100))
    def test_buffer_with_capacity_for_everything_misses_once_per_page(self, pattern):
        disk = SimulatedDisk(page_size=64)
        for _ in range(10):
            disk.allocate(PageKind.ADJACENCY)
        pool = LRUBufferPool(disk, capacity=10)
        for page_id in pattern:
            pool.read(page_id)
        assert pool.statistics.misses == len(set(pattern))


class TestBPlusTreeProperties:
    @_SETTINGS
    @given(
        st.sets(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=400),
        st.sampled_from([64, 128, 512, 4096]),
    )
    def test_every_inserted_key_is_found(self, keys, page_size):
        disk = SimulatedDisk(page_size=page_size)
        entries = [(key, key * 2) for key in keys]
        tree = StaticBPlusTree(disk, PageKind.ADJACENCY_INDEX, entries)
        buffer = LRUBufferPool(disk, capacity=4)
        for key in keys:
            assert tree.lookup(key, buffer) == key * 2

    @_SETTINGS
    @given(st.sets(st.integers(min_value=0, max_value=1000), min_size=2, max_size=200))
    def test_missing_keys_raise(self, keys):
        from repro.errors import StorageError

        disk = SimulatedDisk(page_size=128)
        tree = StaticBPlusTree(disk, PageKind.ADJACENCY_INDEX, [(key, key) for key in keys])
        buffer = LRUBufferPool(disk, capacity=2)
        missing = max(keys) + 1
        try:
            tree.lookup(missing, buffer)
        except StorageError:
            return
        raise AssertionError("lookup of a missing key must raise StorageError")


class TestStorageSchemeProperties:
    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=25),
        st.sampled_from([256, 512, 2048]),
    )
    def test_disk_accessor_equals_memory_accessor(self, seed, cost_types, facilities, page_size):
        graph, facility_set = random_mcn(
            num_nodes=20,
            num_edges=35,
            num_cost_types=cost_types,
            num_facilities=facilities,
            seed=seed,
        )
        storage = NetworkStorage.build(graph, facility_set, page_size=page_size, buffer_fraction=0.05)
        memory = InMemoryAccessor(graph, facility_set)
        for node in graph.nodes():
            assert sorted(storage.adjacency(node.node_id)) == sorted(memory.adjacency(node.node_id))
        for edge in graph.edges():
            assert storage.edge_facilities(edge.edge_id) == memory.edge_facilities(edge.edge_id)
        for facility in facility_set:
            assert storage.facility_edge(facility.facility_id) == facility.edge_id
