"""The temporal subsystem: requests, policy knobs, executor LRU, session routing.

The temporal *differential oracle* lives in ``tests/test_temporal_oracle.py``;
this file covers the machinery around it — sweep-request validation at
construction/decode time, the ``temporal`` policy knobs, the snapshot LRU's
hit/rebuild/eviction behaviour, and how :class:`~repro.api.Session` routes
departure-time work (including mixed batches) to the executor.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api import ExecutionPolicy, Session
from repro.api.policy import policy_from_payload, policy_to_payload
from repro.datagen import (
    EdgeCostStreamSpec,
    WorkloadSpec,
    make_profile_network,
    make_workload,
)
from repro.errors import PolicyError, QueryError
from repro.network.location import NetworkLocation
from repro.service.requests import (
    SkylineRequest,
    TopKRequest,
    request_from_payload,
    request_to_payload,
)
from repro.temporal import (
    SkylineSweepRequest,
    TemporalExecutor,
    TopKSweepRequest,
    sweep_request_from_payload,
    sweep_request_to_payload,
)
from repro.timedep import (
    TimeVaryingMCN,
    peak_profile,
    skyline_over_period,
    top_k_over_period,
)

WORKLOAD = make_workload(
    WorkloadSpec(num_nodes=90, num_facilities=25, num_cost_types=2, num_queries=3, seed=71)
)
STREAM_SPEC = EdgeCostStreamSpec(
    num_ticks=4, start_time=6.0, time_step=0.5, affected_fraction=0.3, seed=72
)
POLICY = ExecutionPolicy(temporal="profiles", profile_source="rush")


def fresh_session() -> Session:
    workload = make_workload(
        WorkloadSpec(
            num_nodes=90, num_facilities=25, num_cost_types=2, num_queries=3, seed=71
        )
    )
    network = make_profile_network(workload.graph, STREAM_SPEC)
    return Session(workload.graph, workload.facilities, profiles={"rush": network})


class TestDepartureTimeRequests:
    def test_requests_accept_and_normalise_departure_time(self):
        request = SkylineRequest(WORKLOAD.queries[0], departure_time=8)
        assert request.departure_time == 8.0
        assert isinstance(request.departure_time, float)

    @pytest.mark.parametrize("bad", ["soon", float("nan"), float("inf"), -1.0])
    def test_invalid_departure_times_rejected_at_construction(self, bad):
        with pytest.raises(QueryError):
            SkylineRequest(WORKLOAD.queries[0], departure_time=bad)
        with pytest.raises(QueryError):
            TopKRequest(WORKLOAD.queries[0], 3, weights=(0.5, 0.5), departure_time=bad)

    def test_payload_round_trip_carries_departure_time(self):
        request = TopKRequest(
            WORKLOAD.queries[1], 4, weights=(0.3, 0.7), departure_time=7.25
        )
        payload = request_to_payload(request)
        assert payload["departure_time"] == 7.25
        assert request_from_payload(payload) == request

    def test_static_payloads_omit_the_field(self):
        payload = request_to_payload(SkylineRequest(WORKLOAD.queries[0]))
        assert "departure_time" not in payload
        assert request_from_payload(payload).departure_time is None


class TestSweepRequests:
    def test_times_validated_at_construction(self):
        location = WORKLOAD.queries[0]
        with pytest.raises(QueryError):
            SkylineSweepRequest(location, ())
        with pytest.raises(QueryError):
            SkylineSweepRequest(location, (2.0, 1.0))
        with pytest.raises(QueryError):
            SkylineSweepRequest(location, (1.0, float("nan")))
        with pytest.raises(QueryError):
            TopKSweepRequest(location, 0, (1.0, 2.0))

    def test_payload_round_trip(self):
        location = WORKLOAD.queries[0]
        for request in (
            SkylineSweepRequest(location, (6.0, 7.0, 8.0)),
            TopKSweepRequest(location, 3, (6.0, 7.5), weights=(0.4, 0.6)),
        ):
            assert sweep_request_from_payload(sweep_request_to_payload(request)) == request

    def test_invalid_payloads_rejected_at_decode(self):
        location = WORKLOAD.queries[0]
        payload = sweep_request_to_payload(SkylineSweepRequest(location, (6.0, 7.0)))
        payload["times"] = [7.0, 6.0]
        with pytest.raises(QueryError):
            sweep_request_from_payload(payload)
        with pytest.raises(QueryError):
            sweep_request_from_payload({"type": "sweep?"})


class TestTemporalPolicy:
    def test_profiles_mode_requires_a_source(self):
        with pytest.raises(PolicyError):
            ExecutionPolicy(temporal="profiles")
        with pytest.raises(PolicyError):
            ExecutionPolicy(temporal="off", profile_source="rush")
        with pytest.raises(PolicyError):
            ExecutionPolicy(temporal="sometimes", profile_source="rush")

    def test_knobs_validated(self):
        with pytest.raises(PolicyError):
            ExecutionPolicy(temporal_quantum=0.0)
        with pytest.raises(PolicyError):
            ExecutionPolicy(temporal_cache_size=0)

    def test_payload_round_trip(self):
        policy = ExecutionPolicy(
            temporal="profiles",
            profile_source="rush",
            temporal_quantum=0.5,
            temporal_cache_size=4,
        )
        assert policy_from_payload(policy_to_payload(policy)) == policy

    def test_unknown_profile_source_rejected_by_session(self):
        with fresh_session() as session:
            with pytest.raises(PolicyError, match="rush"):
                session.query(
                    SkylineRequest(WORKLOAD.queries[0], departure_time=8.0),
                    policy=replace(POLICY, profile_source="weekend"),
                )

    def test_departure_time_without_temporal_mode_rejected(self):
        with fresh_session() as session:
            with pytest.raises(PolicyError, match="temporal"):
                session.query(SkylineRequest(WORKLOAD.queries[0], departure_time=8.0))

    def test_profiles_must_cover_the_session_graph(self):
        other = make_workload(
            WorkloadSpec(
                num_nodes=40, num_facilities=10, num_cost_types=2, num_queries=1, seed=5
            )
        )
        foreign = TimeVaryingMCN(other.graph)
        with pytest.raises(PolicyError):
            Session(
                WORKLOAD.graph, WORKLOAD.facilities, profiles={"rush": foreign}
            )


class TestExecutorCache:
    def build(self, session: Session, *, quantum=0.25, cache_size=8) -> TemporalExecutor:
        policy = replace(
            POLICY, temporal_quantum=quantum, temporal_cache_size=cache_size
        )
        return session._temporal_for(session._resolve(policy))

    def test_quantisation_buckets_nearby_times(self):
        with fresh_session() as session:
            executor = self.build(session, quantum=0.5)
            request = SkylineRequest(WORKLOAD.queries[0])
            static = ExecutionPolicy()
            for departure_time in (7.9, 8.0, 8.1, 8.24):
                executor.query(
                    replace(request, departure_time=departure_time), static
                )
            stats = executor.statistics
            assert stats.builds == 1
            assert stats.hits == 3
            assert executor.cached_times == (8.0,)

    def test_lru_evicts_oldest_snapshot(self):
        with fresh_session() as session:
            executor = self.build(session, quantum=0.25, cache_size=2)
            request = SkylineRequest(WORKLOAD.queries[0])
            static = ExecutionPolicy()
            for departure_time in (6.0, 7.0, 8.0):
                executor.query(
                    replace(request, departure_time=departure_time), static
                )
            stats = executor.statistics
            assert stats.builds == 3
            assert stats.evictions == 1
            assert executor.cached_times == (7.0, 8.0)

    def test_cost_revision_drift_rebuilds_the_snapshot(self):
        with fresh_session() as session:
            executor = self.build(session)
            request = SkylineRequest(WORKLOAD.queries[0], departure_time=8.0)
            static = ExecutionPolicy()
            executor.query(request, static)
            graph = session.graph
            edge = next(iter(graph.edges()))
            graph.update_edge_costs(
                edge.edge_id, [cost * 2.0 for cost in edge.costs]
            )
            executor.query(request, static)
            stats = executor.statistics
            assert stats.builds == 2
            assert stats.rebuilds == 1


class TestSessionRouting:
    def test_mixed_batch_preserves_submission_order(self):
        with fresh_session() as session:
            requests = [
                SkylineRequest(WORKLOAD.queries[0]),
                SkylineRequest(WORKLOAD.queries[0], departure_time=8.0),
                TopKRequest(WORKLOAD.queries[1], 3, weights=(0.5, 0.5)),
                TopKRequest(
                    WORKLOAD.queries[1], 3, weights=(0.5, 0.5), departure_time=8.0
                ),
            ]
            batch = session.run_batch(requests, policy=POLICY)
            assert [response.request for response in batch.responses] == requests

    def test_sweep_matches_the_timedep_reference(self):
        """Session sweeps must agree with the seed's period queries exactly."""
        times = (6.0, 6.5, 7.0, 7.5, 8.0, 8.5)
        workload = make_workload(
            WorkloadSpec(
                num_nodes=90, num_facilities=25, num_cost_types=2, num_queries=3, seed=71
            )
        )
        network = make_profile_network(workload.graph, STREAM_SPEC)
        from repro.network.facilities import FacilitySet

        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        reference_skyline = skyline_over_period(
            network, facilities, workload.queries[0], times
        )
        from repro.core.aggregates import WeightedSum

        reference_topk = top_k_over_period(
            network, facilities, workload.queries[1], WeightedSum((0.5, 0.5)), 3, times
        )
        with Session(
            workload.graph, facilities, profiles={"rush": network}
        ) as session:
            sky = session.sweep(
                SkylineSweepRequest(workload.queries[0], times), policy=POLICY
            )
            top = session.sweep(
                TopKSweepRequest(workload.queries[1], 3, times, weights=(0.5, 0.5)),
                policy=POLICY,
            )
        assert list(sky.results) == reference_skyline
        assert list(top.results) == reference_topk
        assert sky.intervals and sky.intervals[0].start == times[0]

    def test_sweep_without_temporal_policy_rejected(self):
        with fresh_session() as session:
            with pytest.raises(PolicyError):
                session.sweep(SkylineSweepRequest(WORKLOAD.queries[0], (6.0, 7.0)))

    def test_profile_names_listed(self):
        with fresh_session() as session:
            assert session.profile_names == ("rush",)


class TestRebindFacilities:
    def test_rebound_facilities_preserve_ids_and_positions(self):
        from repro.network.facilities import FacilitySet
        from repro.timedep.network import rebind_facilities

        workload = make_workload(
            WorkloadSpec(
                num_nodes=60, num_facilities=15, num_cost_types=2, num_queries=1, seed=77
            )
        )
        facilities = FacilitySet(workload.graph, iter(workload.facilities))
        network = TimeVaryingMCN(workload.graph)
        edge = next(iter(workload.graph.edges()))
        network.set_profile(
            edge.edge_id, 0, peak_profile(peak_time=8.0, peak_multiplier=2.0)
        )
        snapshot = network.snapshot(8.0)
        rebound = rebind_facilities(snapshot, facilities)
        assert sorted(f.facility_id for f in rebound) == sorted(
            f.facility_id for f in facilities
        )
        for facility in facilities:
            twin = rebound.facility(facility.facility_id)
            assert twin.edge_id == facility.edge_id
            assert twin.offset == facility.offset
