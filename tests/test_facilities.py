"""Unit tests for facilities and facility sets."""

from __future__ import annotations

import pytest

from repro.errors import FacilityError
from repro.network.facilities import Facility, FacilitySet
from repro.network.graph import MultiCostGraph


@pytest.fixture
def graph() -> MultiCostGraph:
    graph = MultiCostGraph(2)
    for node_id in range(3):
        graph.add_node(node_id)
    graph.add_edge(0, 1, [10.0, 5.0], length=10.0)
    graph.add_edge(1, 2, [6.0, 3.0], length=6.0)
    return graph


class TestFacilityPlacement:
    def test_add_and_lookup(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, 0, 4.0))
        assert facilities.facility(0).offset == 4.0
        assert 0 in facilities

    def test_add_on_edge_helper(self, graph):
        facilities = FacilitySet(graph)
        facility = facilities.add_on_edge(3, 1, 2.0, {"name": "cafe"})
        assert facility.attributes["name"] == "cafe"
        assert facilities.edge_of(3) == 1

    def test_duplicate_id_rejected(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, 0, 1.0))
        with pytest.raises(FacilityError):
            facilities.add(Facility(0, 1, 1.0))

    def test_unknown_edge_rejected(self, graph):
        facilities = FacilitySet(graph)
        with pytest.raises(FacilityError):
            facilities.add(Facility(0, 99, 1.0))

    def test_offset_beyond_edge_rejected(self, graph):
        facilities = FacilitySet(graph)
        with pytest.raises(FacilityError):
            facilities.add(Facility(0, 1, 7.5))

    def test_offset_at_end_nodes_allowed(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, 0, 0.0))
        facilities.add(Facility(1, 0, 10.0))
        assert len(facilities) == 2

    def test_constructor_accepts_iterable(self, graph):
        facilities = FacilitySet(graph, [Facility(0, 0, 1.0), Facility(1, 1, 2.0)])
        assert len(facilities) == 2

    def test_unknown_facility_lookup(self, graph):
        facilities = FacilitySet(graph)
        with pytest.raises(FacilityError):
            facilities.facility(5)

    def test_facility_set_bound_to_its_graph(self, graph):
        facilities = FacilitySet(graph)
        assert facilities.graph is graph


class TestFacilityIndexing:
    def test_on_edge_groups_by_edge(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, 0, 1.0))
        facilities.add(Facility(1, 0, 3.0))
        facilities.add(Facility(2, 1, 2.0))
        assert [f.facility_id for f in facilities.on_edge(0)] == [0, 1]
        assert [f.facility_id for f in facilities.on_edge(1)] == [2]

    def test_on_edge_without_facilities_is_empty(self, graph):
        assert FacilitySet(graph).on_edge(0) == []

    def test_edges_with_facilities(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, 1, 2.0))
        assert set(facilities.edges_with_facilities()) == {1}

    def test_iteration_and_ids(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(5, 0, 1.0))
        facilities.add(Facility(9, 1, 1.0))
        assert {f.facility_id for f in facilities} == {5, 9}
        assert set(facilities.facility_ids()) == {5, 9}

    def test_density(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, 0, 1.0))
        assert facilities.density() == pytest.approx(0.5)

    def test_density_of_empty_graph(self):
        graph = MultiCostGraph(1)
        graph.add_node(0)
        assert FacilitySet(graph).density() == 0.0

    def test_attributes_default_to_empty_mapping(self, graph):
        facilities = FacilitySet(graph)
        facilities.add(Facility(0, 0, 1.0))
        assert dict(facilities.facility(0).attributes) == {}
