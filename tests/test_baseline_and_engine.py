"""Tests for the straightforward baseline and the MCNQueryEngine facade."""

from __future__ import annotations

import pytest

from repro.core.aggregates import WeightedSum
from repro.core.baseline import baseline_cost_vectors, baseline_skyline, baseline_top_k
from repro.core.engine import MCNQueryEngine
from repro.errors import QueryError
from repro.network import InMemoryAccessor, NetworkLocation
from tests.helpers import exact_skyline, exact_top_k, facility_vectors


class TestBaseline:
    def test_cost_vectors_match_dijkstra(self, tiny_graph, tiny_facilities, tiny_query):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        vectors = baseline_cost_vectors(accessor, tiny_graph, tiny_query)
        truth = facility_vectors(tiny_graph, tiny_facilities, tiny_query)
        assert set(vectors) == set(truth)
        for fid in truth:
            assert vectors[fid] == pytest.approx(truth[fid])

    def test_baseline_skyline_matches_exact(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        query = small_workload.queries[0]
        accessor = InMemoryAccessor(graph, facilities)
        result = baseline_skyline(accessor, graph, query)
        assert result.facility_ids() == exact_skyline(facility_vectors(graph, facilities, query))

    def test_baseline_topk_matches_exact(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        query = small_workload.queries[1]
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        accessor = InMemoryAccessor(graph, facilities)
        result = baseline_top_k(accessor, graph, query, aggregate, 5)
        truth = exact_top_k(facility_vectors(graph, facilities, query), aggregate, 5)
        assert result.facility_ids() == [fid for fid, _ in truth]

    def test_baseline_reads_whole_network_per_cost_type(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        accessor = InMemoryAccessor(graph, facilities)
        baseline_skyline(accessor, graph, small_workload.queries[0])
        assert accessor.statistics.adjacency_requests >= graph.num_nodes * graph.num_cost_types * 0.9

    def test_baseline_topk_invalid_k(self, tiny_graph, tiny_facilities, tiny_query):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        with pytest.raises(QueryError):
            baseline_top_k(accessor, tiny_graph, tiny_query, WeightedSum((0.5, 0.5)), 0)

    def test_baseline_results_are_pinned(self, tiny_graph, tiny_facilities, tiny_query):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        result = baseline_skyline(accessor, tiny_graph, tiny_query)
        assert all(facility.pinned for facility in result)


class TestEngineConstruction:
    def test_in_memory_engine(self, tiny_graph, tiny_facilities):
        engine = MCNQueryEngine(tiny_graph, tiny_facilities)
        assert engine.storage is None
        assert isinstance(engine.accessor, InMemoryAccessor)

    def test_disk_engine_builds_storage(self, tiny_graph, tiny_facilities):
        engine = MCNQueryEngine(tiny_graph, tiny_facilities, use_disk=True, page_size=512)
        assert engine.storage is not None
        assert engine.accessor is engine.storage

    def test_explicit_storage_reused(self, tiny_graph, tiny_facilities):
        from repro.storage import NetworkStorage

        storage = NetworkStorage.build(tiny_graph, tiny_facilities)
        engine = MCNQueryEngine(tiny_graph, tiny_facilities, storage=storage)
        assert engine.storage is storage

    def test_graph_and_facilities_exposed(self, tiny_graph, tiny_facilities):
        engine = MCNQueryEngine(tiny_graph, tiny_facilities)
        assert engine.graph is tiny_graph
        assert engine.facilities is tiny_facilities


class TestEngineQueries:
    def test_algorithms_agree(self, tiny_engine, tiny_query):
        ids = {
            algorithm: tiny_engine.skyline(tiny_query, algorithm=algorithm).facility_ids()
            for algorithm in ("lsa", "cea", "baseline")
        }
        assert ids["lsa"] == ids["cea"] == ids["baseline"] == {0, 1}

    def test_unknown_algorithm_rejected(self, tiny_engine, tiny_query):
        with pytest.raises(QueryError):
            tiny_engine.skyline(tiny_query, algorithm="quantum")

    def test_algorithm_names_case_insensitive(self, tiny_engine, tiny_query):
        assert tiny_engine.skyline(tiny_query, algorithm="CEA").facility_ids() == {0, 1}

    def test_top_k_with_weights(self, tiny_engine, tiny_query):
        result = tiny_engine.top_k(tiny_query, 1, weights=[0.9, 0.1])
        assert result.facility_ids() == [1]

    def test_top_k_with_aggregate_function(self, tiny_engine, tiny_query):
        result = tiny_engine.top_k(tiny_query, 2, aggregate=WeightedSum((0.9, 0.1)))
        assert len(result) == 2

    def test_top_k_default_aggregate_is_uniform(self, tiny_engine, tiny_query):
        explicit = tiny_engine.top_k(tiny_query, 3, weights=[0.5, 0.5])
        implicit = tiny_engine.top_k(tiny_query, 3)
        assert implicit.facility_ids() == explicit.facility_ids()

    def test_weights_and_aggregate_both_rejected(self, tiny_engine, tiny_query):
        with pytest.raises(QueryError):
            tiny_engine.top_k(tiny_query, 1, weights=[1.0, 1.0], aggregate=WeightedSum((1.0, 1.0)))

    def test_non_monotone_aggregate_rejected(self, tiny_engine, tiny_query):
        with pytest.raises(QueryError):
            tiny_engine.top_k(tiny_query, 1, aggregate=lambda costs: -sum(costs))

    def test_iter_skyline_progressive(self, tiny_engine, tiny_query):
        ids = {facility.facility_id for facility in tiny_engine.iter_skyline(tiny_query)}
        assert ids == {0, 1}

    def test_iter_skyline_rejects_baseline(self, tiny_engine, tiny_query):
        with pytest.raises(QueryError):
            tiny_engine.iter_skyline(tiny_query, algorithm="baseline")

    def test_iter_top_incremental(self, tiny_engine, tiny_query):
        stream = tiny_engine.iter_top(tiny_query, weights=[0.5, 0.5])
        results = stream.take(2)
        assert [item.facility_id for item in results] == tiny_engine.top_k(
            tiny_query, 2, weights=[0.5, 0.5]
        ).facility_ids()

    def test_iter_top_rejects_baseline(self, tiny_engine, tiny_query):
        with pytest.raises(QueryError):
            tiny_engine.iter_top(tiny_query, algorithm="baseline")

    def test_random_weights_match_dimensionality(self, tiny_engine):
        weights = tiny_engine.random_weights()
        assert len(weights.weights) == 2


class TestEngineOnDisk:
    def test_disk_and_memory_engines_agree(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        memory_engine = MCNQueryEngine(graph, facilities)
        disk_engine = MCNQueryEngine(graph, facilities, use_disk=True, page_size=512)
        for query in small_workload.queries[:2]:
            assert (
                memory_engine.skyline(query).facility_ids()
                == disk_engine.skyline(query).facility_ids()
            )
            assert (
                memory_engine.top_k(query, 3, weights=[0.4, 0.3, 0.3]).facility_ids()
                == disk_engine.top_k(query, 3, weights=[0.4, 0.3, 0.3]).facility_ids()
            )

    def test_disk_engine_reports_page_reads(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        engine = MCNQueryEngine(graph, facilities, use_disk=True, page_size=512)
        result = engine.skyline(small_workload.queries[0])
        assert result.statistics.io.page_reads > 0

    def test_cea_uses_fewer_page_reads_than_lsa(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        engine = MCNQueryEngine(graph, facilities, use_disk=True, page_size=512)
        query = small_workload.queries[0]
        engine.storage.reset_statistics(clear_buffer=True)
        lsa = engine.skyline(query, algorithm="lsa")
        engine.storage.reset_statistics(clear_buffer=True)
        cea = engine.skyline(query, algorithm="cea")
        assert cea.statistics.io.page_reads < lsa.statistics.io.page_reads
