"""Golden pin of the serving tier's wire surface + limits plumbing.

``tests/fixtures/serve_surface.json`` holds the full route table, the
request/response schemas and the error-envelope shape.  Any drift —
renaming a route, adding a response key, changing an error code — fails
here and must be acknowledged by regenerating the fixture in the same
commit (``PYTHONPATH=src python tests/fixtures/regenerate.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datagen import WorkloadSpec, make_workload
from repro.api import Session
from repro.errors import ServeError
import repro.serve as serve
from repro.serve import (
    ERROR_CODES,
    AdmissionController,
    ServeApp,
    ServeConfig,
    error_envelope,
)

FIXTURE = Path(__file__).parent / "fixtures" / "serve_surface.json"


@pytest.fixture(scope="module")
def surface():
    workload = make_workload(
        WorkloadSpec(num_nodes=20, num_facilities=5, num_cost_types=2, num_queries=1, seed=1)
    )
    with Session(workload.graph, workload.facilities) as session:
        yield ServeApp(session).describe_surface()


class TestGoldenSurface:
    def test_surface_matches_the_golden_fixture(self, surface):
        pinned = json.loads(FIXTURE.read_text())
        assert surface == pinned, (
            "serve wire surface drifted; if intentional, regenerate with "
            "PYTHONPATH=src python tests/fixtures/regenerate.py"
        )

    def test_surface_is_json_round_trippable(self, surface):
        assert json.loads(json.dumps(surface)) == surface

    def test_every_route_has_a_schema(self, surface):
        routes = {f"{r['method']} {r['path']}" for r in surface["routes"]}
        assert routes == set(surface["schemas"])

    def test_error_codes_sorted_and_pinned(self, surface):
        assert surface["error_codes"] == sorted(ERROR_CODES)
        assert list(ERROR_CODES) == sorted(ERROR_CODES)

    def test_envelope_shape(self):
        envelope = error_envelope("saturated", "busy")
        assert envelope == {"error": {"code": "saturated", "message": "busy"}}

    def test_unknown_error_code_refused(self):
        with pytest.raises(ServeError, match="unknown error code"):
            error_envelope("teapot", "I'm a teapot")

    def test_module_exports_pinned(self):
        assert list(serve.__all__) == sorted(serve.__all__)
        for name in serve.__all__:
            assert getattr(serve, name) is not None


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert (config.max_in_flight, config.max_queued_jobs) == (8, 32)
        assert config.request_timeout_seconds == 10.0
        assert (config.stream_buffer, config.latency_window) == (64, 512)
        assert config.max_body_bytes == 1 << 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_in_flight": 0},
            {"max_in_flight": True},
            {"max_queued_jobs": -1},
            {"stream_buffer": 0},
            {"latency_window": "big"},
            {"max_body_bytes": 100},
            {"request_timeout_seconds": 0.0},
            {"request_timeout_seconds": -1},
            {"request_timeout_seconds": "fast"},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServeConfig(**kwargs)

    def test_timeout_none_disables_deadlines(self):
        assert ServeConfig(request_timeout_seconds=None).request_timeout_seconds is None

    def test_timeout_coerced_to_float(self):
        assert ServeConfig(request_timeout_seconds=2).request_timeout_seconds == 2.0


class TestAdmissionController:
    def test_acquire_release_accounting(self):
        admission = AdmissionController(2)
        assert admission.try_acquire() and admission.try_acquire()
        assert not admission.try_acquire()  # saturated: instant refusal
        assert (admission.in_flight, admission.rejected) == (2, 1)
        admission.release()
        assert admission.try_acquire()
        assert (admission.admitted, admission.high_water) == (3, 2)

    def test_unbalanced_release_raises(self):
        admission = AdmissionController(1)
        with pytest.raises(ServeError, match="release"):
            admission.release()

    def test_snapshot_shape(self):
        admission = AdmissionController(4)
        admission.try_acquire()
        assert admission.snapshot() == {
            "capacity": 4,
            "in_flight": 1,
            "high_water": 1,
            "admitted": 1,
            "rejected": 0,
        }

    @pytest.mark.parametrize("bad", [0, -3, True, 1.5])
    def test_invalid_capacity_rejected(self, bad):
        with pytest.raises(ServeError, match="max_in_flight"):
            AdmissionController(bad)
