"""Classic algorithms as a tier-1 differential oracle for the network stack.

The classic (Section II) algorithms — BNL / SFS / D&C skylines and the
TA / NRA top-k — operate on plain cost-vector tables with none of the
network machinery: no expansion, no compiled arcs, no caches.  Feeding them
the ground-truth facility cost vectors (independent Dijkstra runs) and
comparing against the full network stack's answers cross-checks the two
halves of the codebase against each other on every run, in every CI mode.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.classic.skyline import bnl_skyline, dc_skyline, sfs_skyline
from repro.classic.topk import (
    SortedCostLists,
    no_random_access_algorithm,
    threshold_algorithm,
)
from repro.core.aggregates import WeightedSum
from repro.datagen import WorkloadSpec, make_workload
from repro.service.requests import SkylineRequest, TopKRequest
from tests.helpers import facility_vectors

CASES = [
    WorkloadSpec(
        num_nodes=60, num_facilities=18, num_cost_types=2, clustered=True,
        num_queries=3, seed=91,
    ),
    WorkloadSpec(
        num_nodes=80, num_facilities=22, num_cost_types=3, clustered=False,
        num_queries=3, seed=92,
    ),
]


@pytest.mark.parametrize("spec", CASES, ids=lambda s: f"d{s.num_cost_types}-s{s.seed}")
class TestClassicNetworkDifferential:
    def test_network_skyline_matches_every_classic_skyline(self, spec):
        workload = make_workload(spec)
        with Session(workload.graph, workload.facilities) as session:
            for query in workload.queries:
                vectors = facility_vectors(
                    workload.graph, session.facilities, query
                )
                network_ids = set(
                    session.query(SkylineRequest(query)).result.facility_ids()
                )
                assert network_ids == bnl_skyline(vectors)
                assert network_ids == sfs_skyline(vectors)
                assert network_ids == dc_skyline(vectors)

    def test_network_topk_matches_ta_and_nra(self, spec):
        workload = make_workload(spec)
        dims = spec.num_cost_types
        weights = tuple(round(1.0 / dims, 9) for _ in range(dims))
        aggregate = WeightedSum(weights)
        with Session(workload.graph, workload.facilities) as session:
            for query in workload.queries:
                vectors = facility_vectors(
                    workload.graph, session.facilities, query
                )
                lists = SortedCostLists.from_cost_vectors(vectors)
                response = session.query(TopKRequest(query, 4, weights=weights))
                network = [
                    (entry.facility_id, entry.score) for entry in response.result
                ]
                for classic in (
                    threshold_algorithm(lists, aggregate, 4),
                    no_random_access_algorithm(lists, aggregate, 4),
                ):
                    assert [key for key, _score in classic] == [
                        key for key, _score in network
                    ]
                    for (_k1, classic_score), (_k2, network_score) in zip(
                        classic, network
                    ):
                        assert classic_score == pytest.approx(
                            network_score, abs=1e-9
                        )
