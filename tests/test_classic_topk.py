"""Tests for the threshold algorithm (TA) and its no-random-access variant (NRA)."""

from __future__ import annotations

import random

import pytest

from repro.classic.topk import SortedCostLists, no_random_access_algorithm, threshold_algorithm
from repro.core.aggregates import WeightedSum
from repro.errors import QueryError
from tests.helpers import exact_top_k


def random_vectors(count: int, dimensions: int, seed: int):
    rng = random.Random(seed)
    return {key: tuple(rng.uniform(0, 100) for _ in range(dimensions)) for key in range(count)}


class TestSortedCostLists:
    def test_lists_are_sorted(self):
        lists = SortedCostLists.from_cost_vectors({1: (3.0, 1.0), 2: (1.0, 2.0), 3: (2.0, 3.0)})
        for ordered in lists.lists:
            costs = [cost for _key, cost in ordered]
            assert costs == sorted(costs)

    def test_dimensions_and_len(self):
        lists = SortedCostLists.from_cost_vectors({1: (3.0, 1.0), 2: (1.0, 2.0)})
        assert lists.dimensions == 2
        assert len(lists) == 2

    def test_empty(self):
        lists = SortedCostLists.from_cost_vectors({})
        assert lists.dimensions == 0
        assert len(lists) == 0


class TestThresholdAlgorithm:
    def test_matches_brute_force(self):
        vectors = random_vectors(80, 3, seed=1)
        lists = SortedCostLists.from_cost_vectors(vectors)
        aggregate = WeightedSum((0.5, 0.3, 0.2))
        for k in (1, 3, 10):
            expected = exact_top_k(vectors, aggregate, k)
            observed = threshold_algorithm(lists, aggregate, k)
            assert [round(score, 6) for _key, score in observed] == [
                round(score, 6) for _key, score in expected
            ]

    def test_k_larger_than_population(self):
        vectors = random_vectors(5, 2, seed=2)
        lists = SortedCostLists.from_cost_vectors(vectors)
        result = threshold_algorithm(lists, WeightedSum((0.5, 0.5)), 10)
        assert len(result) == 5

    def test_empty_input(self):
        lists = SortedCostLists.from_cost_vectors({})
        assert threshold_algorithm(lists, WeightedSum((1.0,)), 3) == []

    def test_invalid_k(self):
        lists = SortedCostLists.from_cost_vectors({1: (1.0,)})
        with pytest.raises(QueryError):
            threshold_algorithm(lists, WeightedSum((1.0,)), 0)

    def test_single_dimension(self):
        vectors = {key: (float(key),) for key in range(20)}
        lists = SortedCostLists.from_cost_vectors(vectors)
        result = threshold_algorithm(lists, WeightedSum((1.0,)), 3)
        assert [key for key, _ in result] == [0, 1, 2]


class TestNoRandomAccessAlgorithm:
    def test_matches_brute_force(self):
        vectors = random_vectors(60, 2, seed=3)
        lists = SortedCostLists.from_cost_vectors(vectors)
        aggregate = WeightedSum((0.6, 0.4))
        for k in (1, 4):
            expected = exact_top_k(vectors, aggregate, k)
            observed = no_random_access_algorithm(lists, aggregate, k)
            assert [round(score, 6) for _key, score in observed] == [
                round(score, 6) for _key, score in expected
            ]

    def test_agrees_with_threshold_algorithm(self):
        vectors = random_vectors(50, 3, seed=4)
        lists = SortedCostLists.from_cost_vectors(vectors)
        aggregate = WeightedSum((0.2, 0.5, 0.3))
        ta = threshold_algorithm(lists, aggregate, 5)
        nra = no_random_access_algorithm(lists, aggregate, 5)
        assert [round(s, 6) for _k, s in ta] == [round(s, 6) for _k, s in nra]

    def test_empty_input(self):
        lists = SortedCostLists.from_cost_vectors({})
        assert no_random_access_algorithm(lists, WeightedSum((1.0,)), 2) == []

    def test_invalid_k(self):
        lists = SortedCostLists.from_cost_vectors({1: (1.0,)})
        with pytest.raises(QueryError):
            no_random_access_algorithm(lists, WeightedSum((1.0,)), -1)
