"""Property-based tests (hypothesis) for cost profiles and stable intervals.

These pin the *algebra* of the temporal building blocks: a piecewise-linear
profile interpolates within its breakpoint hull and clamps outside it, a
flat ramp is indistinguishable from a :class:`ConstantProfile`, a
``peak_profile`` is a symmetric triangle, and ``stable_intervals`` is a
partition of the sampled period — no gaps, no overlaps, answers constant
within each interval.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.timedep import (
    ConstantProfile,
    PiecewiseLinearProfile,
    TimedResult,
    peak_profile,
    stable_intervals,
)

times = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
multipliers = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def breakpoint_lists(min_size: int = 1):
    return st.lists(
        st.tuples(times, multipliers),
        min_size=min_size,
        max_size=8,
        unique_by=lambda pair: pair[0],
    )


class TestPiecewiseLinearProperties:
    @given(breakpoint_lists())
    def test_breakpoints_are_interpolation_fixed_points(self, points):
        profile = PiecewiseLinearProfile(points)
        for t, v in points:
            assert profile.value_at(t) == v

    @given(breakpoint_lists(), times)
    def test_values_stay_inside_the_multiplier_hull(self, points, t):
        profile = PiecewiseLinearProfile(points)
        values = [v for _t, v in points]
        assert min(values) - 1e-12 <= profile.value_at(t) <= max(values) + 1e-12

    @given(breakpoint_lists(), times)
    def test_clamped_outside_the_breakpoint_range(self, points, t):
        profile = PiecewiseLinearProfile(points)
        ordered = sorted(points)
        if t <= ordered[0][0]:
            assert profile.value_at(t) == ordered[0][1]
        if t >= ordered[-1][0]:
            assert profile.value_at(t) == ordered[-1][1]

    @given(
        st.lists(times, min_size=1, max_size=8, unique=True),
        multipliers,
        times,
    )
    def test_flat_ramps_equal_a_constant_profile(self, instants, value, probe):
        """A profile whose breakpoints all share one value IS the constant."""
        flat = PiecewiseLinearProfile([(t, value) for t in instants])
        constant = ConstantProfile(value)
        assert flat.value_at(probe) == constant.value_at(probe)

    @given(
        st.lists(
            st.tuples(
                times.map(lambda t: round(t, 2)),  # grid keeps gaps >= 0.01
                multipliers,
            ),
            min_size=2,
            max_size=8,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_interpolation_is_continuous_at_breakpoints(self, points):
        """Approaching a breakpoint from either side converges to its value."""
        profile = PiecewiseLinearProfile(points)
        epsilon = 1e-7
        spread = max(v for _t, v in points) - min(v for _t, v in points)
        tolerance = 1e-4 * max(1.0, spread)
        for t, v in sorted(points):
            below = profile.value_at(t - epsilon)
            above = profile.value_at(t + epsilon)
            assert abs(below - v) <= tolerance
            assert abs(above - v) <= tolerance


class TestPeakProfileProperties:
    peaks = st.floats(min_value=0.0, max_value=24.0, allow_nan=False)
    heights = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
    widths = st.floats(min_value=0.1, max_value=6.0, allow_nan=False)

    @given(peaks, heights, widths)
    def test_peak_value_and_symmetry(self, peak_time, peak_multiplier, width):
        profile = peak_profile(
            peak_time=peak_time, peak_multiplier=peak_multiplier, width=width
        )
        assert profile.value_at(peak_time) == peak_multiplier
        for fraction in (0.25, 0.5, 0.75, 1.0):
            offset = fraction * width
            left = profile.value_at(peak_time - offset)
            right = profile.value_at(peak_time + offset)
            assert abs(left - right) <= 1e-9 * max(1.0, peak_multiplier)

    @given(peaks, heights, widths, times)
    def test_base_multiplier_outside_the_peak(self, peak_time, peak_multiplier, width, t):
        profile = peak_profile(
            peak_time=peak_time, peak_multiplier=peak_multiplier, width=width
        )
        # abs(t - peak_time) can round *onto* the ramp boundary (a half-ulp
        # tie resolves to exactly `width` while t sits inside the ramp), so
        # the base value is asserted with a ulp-scale tolerance.
        if abs(t - peak_time) >= width:
            assert abs(profile.value_at(t) - 1.0) <= 1e-9


class TestStableIntervalProperties:
    @given(
        st.lists(times, min_size=1, max_size=12, unique=True),
        st.data(),
    )
    @settings(max_examples=200)
    def test_intervals_partition_the_sampled_period(self, instants, data):
        instants = sorted(instants)
        answers = [
            tuple(
                sorted(
                    data.draw(
                        st.sets(st.integers(min_value=0, max_value=3), max_size=3)
                    )
                )
            )
            for _ in instants
        ]
        results = [TimedResult(t, ids) for t, ids in zip(instants, answers)]
        intervals = stable_intervals(results)

        # Coverage: the intervals span exactly the sampled period, in order.
        assert intervals[0].start == instants[0]
        assert intervals[-1].end == instants[-1]
        for earlier, later in zip(intervals, intervals[1:]):
            assert earlier.end < later.start  # no overlap, increasing

        # Every sampled instant falls inside exactly one interval, and the
        # interval's answer is that instant's answer.
        for result in results:
            homes = [
                interval
                for interval in intervals
                if interval.start <= result.time <= interval.end
            ]
            assert len(homes) == 1
            assert homes[0].facility_ids == result.facility_ids

        # Maximality: consecutive intervals carry different answers.
        for earlier, later in zip(intervals, intervals[1:]):
            assert earlier.facility_ids != later.facility_ids
