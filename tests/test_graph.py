"""Unit tests for the MultiCostGraph model."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.network.costs import CostVector
from repro.network.graph import Edge, MultiCostGraph


@pytest.fixture
def simple_graph() -> MultiCostGraph:
    graph = MultiCostGraph(num_cost_types=2)
    graph.add_node(1, 0.0, 0.0)
    graph.add_node(2, 1.0, 0.0)
    graph.add_node(3, 2.0, 0.0)
    graph.add_edge(1, 2, [1.0, 2.0])
    graph.add_edge(2, 3, [3.0, 4.0])
    return graph


class TestGraphConstruction:
    def test_requires_at_least_one_cost_type(self):
        with pytest.raises(GraphError):
            MultiCostGraph(0)

    def test_add_node_and_lookup(self):
        graph = MultiCostGraph(1)
        graph.add_node(7, 1.5, 2.5)
        node = graph.node(7)
        assert (node.x, node.y) == (1.5, 2.5)

    def test_re_adding_identical_node_is_noop(self):
        graph = MultiCostGraph(1)
        graph.add_node(7, 1.0, 2.0)
        graph.add_node(7, 1.0, 2.0)
        assert graph.num_nodes == 1

    def test_re_adding_node_with_different_coordinates_fails(self):
        graph = MultiCostGraph(1)
        graph.add_node(7, 1.0, 2.0)
        with pytest.raises(GraphError):
            graph.add_node(7, 9.0, 9.0)

    def test_add_edge_requires_existing_nodes(self):
        graph = MultiCostGraph(1)
        graph.add_node(1)
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, [1.0])

    def test_add_edge_rejects_self_loop(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.add_edge(1, 1, [1.0, 1.0])

    def test_add_edge_rejects_wrong_dimensionality(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.add_edge(1, 3, [1.0])

    def test_add_edge_rejects_duplicate_edge_id(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.add_edge(1, 3, [1.0, 1.0], edge_id=0)

    def test_edge_ids_auto_increment(self, simple_graph):
        edge = simple_graph.add_edge(1, 3, [1.0, 1.0])
        assert edge.edge_id == 2

    def test_explicit_edge_id_respected(self):
        graph = MultiCostGraph(1)
        graph.add_node(1)
        graph.add_node(2)
        edge = graph.add_edge(1, 2, [1.0], edge_id=42)
        assert edge.edge_id == 42
        assert graph.edge(42) is edge

    def test_default_length_is_first_cost(self, simple_graph):
        assert simple_graph.edge(0).length == 1.0

    def test_zero_first_cost_defaults_length_to_one(self):
        graph = MultiCostGraph(2)
        graph.add_node(1)
        graph.add_node(2)
        edge = graph.add_edge(1, 2, [0.0, 5.0])
        assert edge.length == 1.0

    def test_negative_length_rejected(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.add_edge(1, 3, [1.0, 1.0], length=-2.0)

    def test_costs_accept_cost_vector_instances(self, simple_graph):
        edge = simple_graph.add_edge(1, 3, CostVector([1.0, 1.0]))
        assert edge.costs == (1.0, 1.0)


class TestGraphInspection:
    def test_counts(self, simple_graph):
        assert simple_graph.num_nodes == 3
        assert simple_graph.num_edges == 2

    def test_unknown_node_lookup(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.node(99)

    def test_unknown_edge_lookup(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.edge(99)

    def test_has_node_and_edge(self, simple_graph):
        assert simple_graph.has_node(1)
        assert not simple_graph.has_node(99)
        assert simple_graph.has_edge(0)
        assert not simple_graph.has_edge(99)

    def test_neighbors_undirected(self, simple_graph):
        neighbors = {n for n, _ in simple_graph.neighbors(2)}
        assert neighbors == {1, 3}

    def test_neighbors_unknown_node(self, simple_graph):
        with pytest.raises(GraphError):
            simple_graph.neighbors(99)

    def test_degree(self, simple_graph):
        assert simple_graph.degree(2) == 2
        assert simple_graph.degree(1) == 1

    def test_edge_between(self, simple_graph):
        assert simple_graph.edge_between(1, 2).costs == (1.0, 2.0)
        assert simple_graph.edge_between(2, 1).costs == (1.0, 2.0)
        assert simple_graph.edge_between(1, 3) is None

    def test_iterators(self, simple_graph):
        assert {node.node_id for node in simple_graph.nodes()} == {1, 2, 3}
        assert {edge.edge_id for edge in simple_graph.edges()} == {0, 1}

    def test_repr_mentions_sizes(self, simple_graph):
        text = repr(simple_graph)
        assert "nodes=3" in text and "edges=2" in text

    def test_cost_statistics(self, simple_graph):
        stats = simple_graph.total_cost_statistics()
        assert stats["min"] == [1.0, 2.0]
        assert stats["max"] == [3.0, 4.0]
        assert stats["mean"] == [2.0, 3.0]


class TestConnectivity:
    def test_connected_graph(self, simple_graph):
        assert simple_graph.is_connected()

    def test_disconnected_graph(self):
        graph = MultiCostGraph(1)
        for node_id in range(4):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0])
        graph.add_edge(2, 3, [1.0])
        assert not graph.is_connected()

    def test_empty_graph_is_connected(self):
        assert MultiCostGraph(1).is_connected()

    def test_directed_graph_connectivity_ignores_direction(self):
        graph = MultiCostGraph(1, directed=True)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [1.0])
        assert graph.is_connected()


class TestDirectedGraphs:
    def test_directed_adjacency_is_one_way(self):
        graph = MultiCostGraph(1, directed=True)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [1.0])
        assert [n for n, _ in graph.neighbors(0)] == [1]
        assert graph.neighbors(1) == []

    def test_directed_flag_exposed(self):
        assert MultiCostGraph(1, directed=True).directed
        assert not MultiCostGraph(1).directed


class TestEdgePartialCosts:
    def test_partial_costs_from_first_node(self):
        edge = Edge(0, 1, 2, CostVector([10.0, 4.0]), 10.0)
        assert edge.partial_costs(1, 2.5).values == (2.5, 1.0)

    def test_partial_costs_from_second_node(self):
        edge = Edge(0, 1, 2, CostVector([10.0, 4.0]), 10.0)
        assert edge.partial_costs(2, 2.5).values == (7.5, 3.0)

    def test_partial_costs_sum_to_full_vector(self):
        edge = Edge(0, 1, 2, CostVector([10.0, 4.0]), 8.0)
        total = edge.partial_costs(1, 3.0) + edge.partial_costs(2, 3.0)
        assert total.values == pytest.approx((10.0, 4.0))

    def test_partial_costs_outside_edge_rejected(self):
        edge = Edge(0, 1, 2, CostVector([10.0]), 10.0)
        with pytest.raises(GraphError):
            edge.partial_costs(1, 11.0)

    def test_partial_costs_from_non_end_node_rejected(self):
        edge = Edge(0, 1, 2, CostVector([10.0]), 10.0)
        with pytest.raises(GraphError):
            edge.partial_costs(3, 1.0)

    def test_other_end(self):
        edge = Edge(0, 1, 2, CostVector([1.0]), 1.0)
        assert edge.other_end(1) == 2
        assert edge.other_end(2) == 1
        with pytest.raises(GraphError):
            edge.other_end(3)
