"""Unit tests for graph/facility (de)serialisation and the builder helpers."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.network import (
    FacilitySet,
    MultiCostGraph,
    graph_from_edge_list,
    read_facilities,
    read_graph,
    validate_graph,
    write_facilities,
    write_graph,
)


class TestGraphRoundTrip:
    def test_round_trip_preserves_structure(self, tiny_graph, tmp_path):
        path = tmp_path / "network.mcn"
        write_graph(tiny_graph, path)
        loaded = read_graph(path)
        assert loaded.num_nodes == tiny_graph.num_nodes
        assert loaded.num_edges == tiny_graph.num_edges
        assert loaded.num_cost_types == tiny_graph.num_cost_types
        for edge in tiny_graph.edges():
            assert loaded.edge(edge.edge_id).costs == edge.costs

    def test_round_trip_preserves_coordinates(self, tiny_graph, tmp_path):
        path = tmp_path / "network.mcn"
        write_graph(tiny_graph, path)
        loaded = read_graph(path)
        node = loaded.node(5)
        assert (node.x, node.y) == (tiny_graph.node(5).x, tiny_graph.node(5).y)

    def test_round_trip_preserves_directedness(self, tmp_path):
        graph = MultiCostGraph(1, directed=True)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [2.0])
        path = tmp_path / "directed.mcn"
        write_graph(graph, path)
        assert read_graph(path).directed

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.mcn"
        path.write_text("")
        with pytest.raises(GraphError):
            read_graph(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mcn"
        path.write_text("GRAPH 2 0\n")
        with pytest.raises(GraphError):
            read_graph(path)

    def test_wrong_cost_count_rejected(self, tmp_path):
        path = tmp_path / "bad.mcn"
        path.write_text("MCN 2 0\nN 0 0.0 0.0\nN 1 1.0 0.0\nE 0 0 1 1.0 5.0\n")
        with pytest.raises(GraphError):
            read_graph(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.mcn"
        path.write_text("MCN 1 0\nX 0\n")
        with pytest.raises(GraphError):
            read_graph(path)


class TestFacilityRoundTrip:
    def test_round_trip(self, tiny_graph, tiny_facilities, tmp_path):
        path = tmp_path / "facilities.txt"
        write_facilities(tiny_facilities, path)
        loaded = read_facilities(tiny_graph, path)
        assert len(loaded) == len(tiny_facilities)
        for facility in tiny_facilities:
            restored = loaded.facility(facility.facility_id)
            assert restored.edge_id == facility.edge_id
            assert restored.offset == pytest.approx(facility.offset)

    def test_bad_header_rejected(self, tiny_graph, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("NOT-FACILITIES\n")
        with pytest.raises(GraphError):
            read_facilities(tiny_graph, path)

    def test_unknown_record_rejected(self, tiny_graph, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("FACILITIES\nZ 1 2 3\n")
        with pytest.raises(GraphError):
            read_facilities(tiny_graph, path)


class TestGraphFromEdgeList:
    def test_nodes_created_on_demand(self):
        graph = graph_from_edge_list(2, [(0, 1, [1.0, 2.0]), (1, 2, [2.0, 3.0])])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_coordinates_applied(self):
        graph = graph_from_edge_list(
            1, [(0, 1, [1.0])], coordinates={0: (5.0, 6.0)}
        )
        assert (graph.node(0).x, graph.node(0).y) == (5.0, 6.0)
        assert (graph.node(1).x, graph.node(1).y) == (0.0, 0.0)

    def test_directed_flag_forwarded(self):
        graph = graph_from_edge_list(1, [(0, 1, [1.0])], directed=True)
        assert graph.directed


class TestValidateGraph:
    def test_healthy_graph_has_no_problems(self, tiny_graph):
        assert validate_graph(tiny_graph) == []

    def test_empty_graph_reported(self):
        problems = validate_graph(MultiCostGraph(1))
        assert any("no nodes" in problem for problem in problems)

    def test_isolated_node_reported(self):
        graph = MultiCostGraph(1)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(0, 1, [1.0])
        problems = validate_graph(graph, require_connected=False)
        assert any("isolated" in problem for problem in problems)

    def test_disconnection_reported_only_when_required(self):
        graph = MultiCostGraph(1)
        for node_id in range(4):
            graph.add_node(node_id)
        graph.add_edge(0, 1, [1.0])
        graph.add_edge(2, 3, [1.0])
        assert any("not connected" in p for p in validate_graph(graph))
        assert not any("not connected" in p for p in validate_graph(graph, require_connected=False))

    def test_zero_cost_edge_reported(self):
        graph = MultiCostGraph(1)
        graph.add_node(0)
        graph.add_node(1)
        graph.add_edge(0, 1, [0.0])
        problems = validate_graph(graph)
        assert any("all-zero" in problem for problem in problems)
