"""Tests for the time-dependent extension (profiles, time-varying MCN, period queries)."""

from __future__ import annotations

import pytest

from repro.core.aggregates import WeightedSum
from repro.errors import GraphError, QueryError
from repro.network import FacilitySet, InMemoryAccessor, MultiCostGraph, NetworkLocation
from repro.timedep import (
    ConstantProfile,
    PiecewiseLinearProfile,
    TimeVaryingMCN,
    peak_profile,
    rebind_facilities,
    skyline_over_period,
    stable_intervals,
    top_k_over_period,
)
from repro.timedep.queries import TimedResult
from tests.helpers import exact_skyline, facility_vectors


class TestProfiles:
    def test_constant_profile(self):
        profile = ConstantProfile(1.5)
        assert profile.value_at(0.0) == 1.5
        assert profile.value_at(100.0) == 1.5

    def test_constant_profile_rejects_negative(self):
        with pytest.raises(GraphError):
            ConstantProfile(-0.1)

    def test_piecewise_linear_interpolation(self):
        profile = PiecewiseLinearProfile([(0.0, 1.0), (10.0, 3.0)])
        assert profile.value_at(5.0) == pytest.approx(2.0)
        assert profile.value_at(2.5) == pytest.approx(1.5)

    def test_piecewise_linear_clamps_outside_range(self):
        profile = PiecewiseLinearProfile([(0.0, 1.0), (10.0, 3.0)])
        assert profile.value_at(-5.0) == 1.0
        assert profile.value_at(50.0) == 3.0

    def test_breakpoints_sorted_and_unique(self):
        profile = PiecewiseLinearProfile([(10.0, 3.0), (0.0, 1.0)])
        assert profile.breakpoints == [(0.0, 1.0), (10.0, 3.0)]
        with pytest.raises(GraphError):
            PiecewiseLinearProfile([(0.0, 1.0), (0.0, 2.0)])

    def test_empty_and_negative_rejected(self):
        with pytest.raises(GraphError):
            PiecewiseLinearProfile([])
        with pytest.raises(GraphError):
            PiecewiseLinearProfile([(0.0, -1.0)])

    def test_peak_profile_shape(self):
        profile = peak_profile(peak_time=8.0, peak_multiplier=2.5, width=2.0)
        assert profile.value_at(8.0) == pytest.approx(2.5)
        assert profile.value_at(6.0) == pytest.approx(1.0)
        assert profile.value_at(7.0) == pytest.approx(1.75)
        assert profile.value_at(0.0) == pytest.approx(1.0)

    def test_peak_profile_invalid_width(self):
        with pytest.raises(GraphError):
            peak_profile(peak_time=8.0, peak_multiplier=2.0, width=0.0)


class TestTimeVaryingMCN:
    @pytest.fixture
    def network(self, tiny_graph) -> TimeVaryingMCN:
        highway = tiny_graph.edge_between(3, 4)
        network = TimeVaryingMCN(tiny_graph)
        # The highway's driving time doubles at the 8 o'clock peak; the toll is constant.
        network.set_profile(highway.edge_id, 0, peak_profile(peak_time=8.0, peak_multiplier=2.0))
        return network

    def test_cost_at_off_peak_equals_base(self, network, tiny_graph):
        highway = tiny_graph.edge_between(3, 4)
        assert network.cost_at(highway.edge_id, 0.0).values == highway.costs.values

    def test_cost_at_peak_is_scaled(self, network, tiny_graph):
        highway = tiny_graph.edge_between(3, 4)
        peak_costs = network.cost_at(highway.edge_id, 8.0)
        assert peak_costs[0] == pytest.approx(highway.costs[0] * 2.0)
        assert peak_costs[1] == pytest.approx(highway.costs[1])

    def test_edges_without_profiles_are_static(self, network, tiny_graph):
        plain = tiny_graph.edge_between(0, 1)
        assert network.cost_at(plain.edge_id, 8.0).values == plain.costs.values

    def test_snapshot_preserves_structure(self, network, tiny_graph):
        snapshot = network.snapshot(8.0)
        assert snapshot.num_nodes == tiny_graph.num_nodes
        assert snapshot.num_edges == tiny_graph.num_edges
        for edge in tiny_graph.edges():
            assert snapshot.edge(edge.edge_id).length == edge.length

    def test_snapshot_reflects_time(self, network, tiny_graph):
        highway = tiny_graph.edge_between(3, 4)
        off_peak = network.snapshot(0.0).edge(highway.edge_id).costs
        peak = network.snapshot(8.0).edge(highway.edge_id).costs
        assert peak[0] > off_peak[0]

    def test_profile_validation(self, tiny_graph):
        with pytest.raises(GraphError):
            TimeVaryingMCN(tiny_graph, {999: [None, None]})
        with pytest.raises(GraphError):
            TimeVaryingMCN(tiny_graph, {0: [None]})
        network = TimeVaryingMCN(tiny_graph)
        with pytest.raises(GraphError):
            network.set_profile(999, 0, ConstantProfile(1.0))
        with pytest.raises(GraphError):
            network.set_profile(0, 5, ConstantProfile(1.0))

    def test_rebind_facilities(self, network, tiny_graph, tiny_facilities):
        snapshot = network.snapshot(8.0)
        rebound = rebind_facilities(snapshot, tiny_facilities)
        assert len(rebound) == len(tiny_facilities)
        assert rebound.graph is snapshot
        for facility in tiny_facilities:
            assert rebound.facility(facility.facility_id).offset == facility.offset


class TestPeriodQueries:
    @pytest.fixture
    def scenario(self, tiny_graph, tiny_facilities):
        highway = tiny_graph.edge_between(3, 4)
        ramp = tiny_graph.edge_between(4, 5)
        network = TimeVaryingMCN(tiny_graph)
        # A strong morning peak makes the tolled highway slow around t=8, so the
        # facility that relies on it (facility 1) loses its time advantage.
        for edge in (highway, ramp):
            network.set_profile(edge.edge_id, 0, peak_profile(peak_time=8.0, peak_multiplier=6.0, width=2.0))
        return network, tiny_facilities, NetworkLocation.at_node(3)

    def test_snapshot_results_match_static_oracle(self, scenario):
        network, facilities, query = scenario
        for time in (0.0, 8.0, 12.0):
            snapshot = network.snapshot(time)
            rebound = rebind_facilities(snapshot, facilities)
            expected = exact_skyline(facility_vectors(snapshot, rebound, query))
            observed = skyline_over_period(network, facilities, query, [time])[0]
            assert set(observed.facility_ids) == expected

    def test_skyline_changes_across_the_peak(self, scenario):
        network, facilities, query = scenario
        results = skyline_over_period(network, facilities, query, [0.0, 8.0])
        assert results[0].facility_ids != results[1].facility_ids

    def test_topk_over_period_ranks_change(self, scenario):
        network, facilities, query = scenario
        aggregate = WeightedSum((0.9, 0.1))
        results = top_k_over_period(network, facilities, query, aggregate, 1, [0.0, 8.0])
        assert results[0].facility_ids[0] != results[1].facility_ids[0]

    def test_times_must_be_increasing_and_non_empty(self, scenario):
        network, facilities, query = scenario
        with pytest.raises(QueryError):
            skyline_over_period(network, facilities, query, [])
        with pytest.raises(QueryError):
            skyline_over_period(network, facilities, query, [2.0, 1.0])

    def test_stable_intervals_grouping(self):
        results = [
            TimedResult(0.0, (1, 2)),
            TimedResult(1.0, (1, 2)),
            TimedResult(2.0, (2,)),
            TimedResult(3.0, (1, 2)),
        ]
        intervals = stable_intervals(results)
        assert [(i.start, i.end, i.facility_ids) for i in intervals] == [
            (0.0, 1.0, (1, 2)),
            (2.0, 2.0, (2,)),
            (3.0, 3.0, (1, 2)),
        ]

    def test_stable_intervals_of_period_query(self, scenario):
        network, facilities, query = scenario
        times = [float(t) for t in range(0, 13)]
        results = skyline_over_period(network, facilities, query, times)
        intervals = stable_intervals(results)
        assert intervals[0].start == 0.0
        assert intervals[-1].end == 12.0
        assert sum((interval.end - interval.start) for interval in intervals) <= 12.0
        assert len(intervals) >= 2  # the peak changes the answer at least once

    def test_stable_intervals_empty_input(self):
        assert stable_intervals([]) == []


class TestStaticEquivalence:
    def test_constant_profiles_reproduce_static_results(self, tiny_graph, tiny_facilities, tiny_query):
        network = TimeVaryingMCN(tiny_graph)
        results = skyline_over_period(network, tiny_facilities, tiny_query, [0.0, 5.0, 10.0])
        static = exact_skyline(facility_vectors(tiny_graph, tiny_facilities, tiny_query))
        for result in results:
            assert set(result.facility_ids) == static
        assert len(stable_intervals(results)) == 1
