"""Unit and integration tests for LSA and CEA skyline processing."""

from __future__ import annotations

import random

import pytest

from repro.core.skyline import MCNSkylineSearch, ProbingPolicy, cea_skyline, lsa_skyline
from repro.errors import QueryError
from repro.network import FacilitySet, InMemoryAccessor, MultiCostGraph, NetworkLocation
from tests.helpers import exact_skyline, facility_vectors, random_mcn, random_query


@pytest.fixture
def accessor(tiny_graph, tiny_facilities) -> InMemoryAccessor:
    return InMemoryAccessor(tiny_graph, tiny_facilities)


class TestTinyGridSkyline:
    """Hand-checkable skyline on the 3x3 toll-highway grid, query at node 3.

    Facility cost vectors (minutes, dollars) from node 3:
      p0 on edge 1-2:   (7.0, 0.0)
      p1 on highway:    (3.0, 0.5)
      p2 on edge 7-8:   (7.5, 0.0)  -- dominated by p0
    So the skyline is {p0, p1}.
    """

    def test_expected_members_lsa(self, accessor, tiny_graph, tiny_query):
        result = lsa_skyline(accessor, tiny_graph, tiny_query)
        assert result.facility_ids() == {0, 1}

    def test_expected_members_cea(self, accessor, tiny_graph, tiny_query):
        result = cea_skyline(accessor, tiny_graph, tiny_query)
        assert result.facility_ids() == {0, 1}

    def test_matches_brute_force(self, accessor, tiny_graph, tiny_facilities, tiny_query):
        truth = exact_skyline(facility_vectors(tiny_graph, tiny_facilities, tiny_query))
        assert lsa_skyline(accessor, tiny_graph, tiny_query).facility_ids() == truth

    def test_pinned_members_have_complete_costs(self, accessor, tiny_graph, tiny_query):
        result = cea_skyline(accessor, tiny_graph, tiny_query)
        for member in result:
            if member.pinned:
                assert all(value is not None for value in member.costs)
                assert member.complete_costs == tuple(member.costs)

    def test_statistics_populated(self, accessor, tiny_graph, tiny_query):
        result = lsa_skyline(accessor, tiny_graph, tiny_query)
        stats = result.statistics
        assert stats.nn_retrievals > 0
        assert stats.candidates_considered >= len(result)
        assert stats.elapsed_seconds >= 0.0
        assert stats.io.adjacency_requests > 0


class TestProgressiveness:
    def test_iteration_yields_same_set_as_run(self, accessor, tiny_graph, tiny_query):
        search = MCNSkylineSearch(accessor, tiny_graph, tiny_query)
        progressive = {facility.facility_id for facility in search}
        result = lsa_skyline(
            InMemoryAccessor(accessor.graph, accessor.facilities), tiny_graph, tiny_query
        )
        assert progressive == result.facility_ids()

    def test_first_result_available_before_full_exploration(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        accessor = InMemoryAccessor(graph, facilities)
        search = MCNSkylineSearch(accessor, graph, small_workload.queries[0])
        iterator = iter(search)
        first = next(iterator)
        requests_at_first = accessor.statistics.adjacency_requests
        rest = list(iterator)
        requests_at_end = accessor.statistics.adjacency_requests
        assert first.facility_id not in {facility.facility_id for facility in rest}
        assert requests_at_first < requests_at_end

    def test_re_iterating_finished_search_returns_cached_result(self, accessor, tiny_graph, tiny_query):
        search = MCNSkylineSearch(accessor, tiny_graph, tiny_query)
        first_pass = [facility.facility_id for facility in search]
        second_pass = [facility.facility_id for facility in search]
        assert first_pass == second_pass

    def test_every_progressive_output_is_final(self, medium_workload):
        graph, facilities = medium_workload.graph, medium_workload.facilities
        accessor = InMemoryAccessor(graph, facilities)
        query = medium_workload.queries[0]
        truth = exact_skyline(facility_vectors(graph, facilities, query))
        for facility in MCNSkylineSearch(accessor, graph, query, share_accesses=True):
            assert facility.facility_id in truth


class TestAlgorithmEquivalence:
    def test_lsa_and_cea_agree_on_workload(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        for query in small_workload.queries:
            lsa = lsa_skyline(InMemoryAccessor(graph, facilities), graph, query)
            cea = cea_skyline(InMemoryAccessor(graph, facilities), graph, query)
            assert lsa.facility_ids() == cea.facility_ids()

    def test_matches_brute_force_on_workload(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        for query in small_workload.queries:
            truth = exact_skyline(facility_vectors(graph, facilities, query))
            observed = cea_skyline(InMemoryAccessor(graph, facilities), graph, query)
            assert observed.facility_ids() == truth

    def test_first_nn_shortcut_does_not_change_result(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        query = small_workload.queries[1]
        with_shortcut = lsa_skyline(
            InMemoryAccessor(graph, facilities), graph, query, first_nn_shortcut=True
        )
        without_shortcut = lsa_skyline(
            InMemoryAccessor(graph, facilities), graph, query, first_nn_shortcut=False
        )
        assert with_shortcut.facility_ids() == without_shortcut.facility_ids()

    def test_probing_policies_do_not_change_result(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        query = small_workload.queries[2]
        results = {
            policy: lsa_skyline(InMemoryAccessor(graph, facilities), graph, query, probing=policy)
            for policy in ProbingPolicy
        }
        reference = results[ProbingPolicy.ROUND_ROBIN].facility_ids()
        for result in results.values():
            assert result.facility_ids() == reference

    def test_cea_issues_fewer_data_requests_than_lsa(self, medium_workload):
        graph, facilities = medium_workload.graph, medium_workload.facilities
        query = medium_workload.queries[0]
        lsa_accessor = InMemoryAccessor(graph, facilities)
        lsa_skyline(lsa_accessor, graph, query)
        cea_accessor = InMemoryAccessor(graph, facilities)
        cea_skyline(cea_accessor, graph, query)
        assert (
            cea_accessor.statistics.adjacency_requests
            <= lsa_accessor.statistics.adjacency_requests
        )

    def test_cea_never_fetches_a_node_twice(self, small_workload):
        graph, facilities = small_workload.graph, small_workload.facilities
        accessor = InMemoryAccessor(graph, facilities)
        cea_skyline(accessor, graph, small_workload.queries[0])
        # Every adjacency request goes through the fetch-once cache, so the
        # number of requests cannot exceed the number of distinct nodes.
        assert accessor.statistics.adjacency_requests <= graph.num_nodes


class TestEdgeCases:
    def test_no_facilities_gives_empty_skyline(self, tiny_graph):
        facilities = FacilitySet(tiny_graph)
        accessor = InMemoryAccessor(tiny_graph, facilities)
        assert lsa_skyline(accessor, tiny_graph, NetworkLocation.at_node(0)).facilities == []

    def test_single_facility_is_the_skyline(self, tiny_graph):
        facilities = FacilitySet(tiny_graph)
        facilities.add_on_edge(0, 0, 1.0)
        accessor = InMemoryAccessor(tiny_graph, facilities)
        result = cea_skyline(accessor, tiny_graph, NetworkLocation.at_node(0))
        assert result.facility_ids() == {0}

    def test_query_on_facility_edge(self, tiny_graph, tiny_facilities):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        highway = tiny_graph.edge_between(4, 5)
        query = NetworkLocation.on_edge(highway.edge_id, 1.0)
        result = lsa_skyline(accessor, tiny_graph, query)
        # Facility 1 sits exactly at the query location: zero cost everywhere,
        # so it dominates every other facility and is the whole skyline.
        assert result.facility_ids() == {1}

    def test_dimension_mismatch_rejected(self, tiny_graph, tiny_facilities):
        other = MultiCostGraph(3)
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        with pytest.raises(QueryError):
            MCNSkylineSearch(accessor, other, NetworkLocation.at_node(0))

    def test_single_cost_type_skyline_is_nearest_facility(self):
        graph, facilities = random_mcn(
            num_nodes=40, num_edges=70, num_cost_types=1, num_facilities=15, seed=5
        )
        accessor = InMemoryAccessor(graph, facilities)
        query = random_query(graph, seed=6)
        result = cea_skyline(accessor, graph, query)
        truth = exact_skyline(facility_vectors(graph, facilities, query))
        assert result.facility_ids() == truth

    def test_duplicate_cost_vectors_both_reported(self, tiny_graph):
        # Two facilities at the same offset of the same edge have identical
        # cost vectors; neither dominates the other so both are skyline members.
        facilities = FacilitySet(tiny_graph)
        highway = tiny_graph.edge_between(4, 5)
        facilities.add_on_edge(0, highway.edge_id, 1.0)
        facilities.add_on_edge(1, highway.edge_id, 1.0)
        accessor = InMemoryAccessor(tiny_graph, facilities)
        result = lsa_skyline(accessor, tiny_graph, NetworkLocation.at_node(3))
        assert result.facility_ids() == {0, 1}

    def test_integer_costs_with_many_ties_match_brute_force(self):
        for seed in range(8):
            graph, facilities = random_mcn(
                num_nodes=25,
                num_edges=45,
                num_cost_types=2,
                num_facilities=12,
                seed=seed,
                integer_costs=True,
            )
            query = random_query(graph, seed=seed + 100)
            truth = exact_skyline(facility_vectors(graph, facilities, query))
            for share in (False, True):
                accessor = InMemoryAccessor(graph, facilities)
                search = MCNSkylineSearch(accessor, graph, query, share_accesses=share)
                assert search.run().facility_ids() == truth, f"seed={seed} share={share}"


class TestDirectedNetworks:
    def test_directed_skyline_matches_brute_force(self):
        rng = random.Random(3)
        graph = MultiCostGraph(2, directed=True)
        for node_id in range(30):
            graph.add_node(node_id)
        # A directed cycle plus random chords keeps everything reachable.
        for node_id in range(30):
            graph.add_edge(node_id, (node_id + 1) % 30, [rng.uniform(1, 5), rng.uniform(1, 5)])
        for _ in range(25):
            u, v = rng.randrange(30), rng.randrange(30)
            if u != v and graph.edge_between(u, v) is None:
                graph.add_edge(u, v, [rng.uniform(1, 5), rng.uniform(1, 5)])
        facilities = FacilitySet(graph)
        edges = list(graph.edges())
        for facility_id in range(10):
            edge = rng.choice(edges)
            facilities.add_on_edge(facility_id, edge.edge_id, rng.uniform(0, edge.length))
        query = NetworkLocation.at_node(0)
        truth = exact_skyline(facility_vectors(graph, facilities, query))
        for share in (False, True):
            accessor = InMemoryAccessor(graph, facilities)
            search = MCNSkylineSearch(accessor, graph, query, share_accesses=share)
            assert search.run().facility_ids() == truth


class TestDeferredDominatorResolution:
    def test_shortcut_reported_dominator_still_gets_resolved(self):
        """A dominator reported via the first-NN shortcut must keep expanding.

        Regression: with exact cost ties, a facility reported early through
        the first-NN shortcut (and hence "resolved" for the expansion
        shutdown test) can still be the only potential dominator of a
        deferred pinned entry.  Its missing dimensions must stay active until
        it is pinned, or the deferred entry is mis-reported at finalisation
        and the skyline contains a dominated member.
        """
        graph, facilities = random_mcn(
            num_nodes=25,
            num_edges=28,
            num_cost_types=4,
            num_facilities=4,
            seed=4,
            integer_costs=True,
        )
        query = random_query(graph, seed=5)
        truth = exact_skyline(facility_vectors(graph, facilities, query))
        for share in (False, True):
            accessor = InMemoryAccessor(graph, facilities)
            search = MCNSkylineSearch(accessor, graph, query, share_accesses=share)
            assert search.run().facility_ids() == truth
