"""Tests for the sharded parallel service: routing, snapshots, merging, executors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.driver import ReplaySpec, build_requests, replay_workload
from repro.cli import build_parser
from repro.core.engine import MCNQueryEngine
from repro.datagen import WorkloadSpec, make_workload
from repro.errors import QueryError
from repro.network.accessor import InMemoryAccessor
from repro.parallel import (
    ParallelExecution,
    ShardedBatchReport,
    ShardedQueryService,
    plan_shards,
)
from repro.service import QueryService, SkylineRequest, TopKRequest
from repro.storage.scheme import NetworkStorage


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        WorkloadSpec(num_nodes=200, num_facilities=80, num_cost_types=3, num_queries=24, seed=11)
    )


@pytest.fixture(scope="module")
def storage(workload):
    return NetworkStorage.build(
        workload.graph, workload.facilities, page_size=1024, buffer_fraction=0.01
    )


@pytest.fixture(scope="module")
def engine(workload, storage):
    return MCNQueryEngine(workload.graph, workload.facilities, storage=storage)


@pytest.fixture(scope="module")
def requests(workload):
    trace = []
    for index, query in enumerate(workload.queries):
        if index % 2 == 0:
            trace.append(SkylineRequest(query))
        else:
            trace.append(TopKRequest(query, k=3, weights=(0.5, 0.3, 0.2)))
    return trace


def result_signature(outcome):
    """Order-sensitive digest of one outcome's answer."""
    result = outcome.result
    return [
        (item.facility_id, getattr(item, "costs", None), getattr(item, "score", None))
        for item in result
    ]


def assert_identical_ordering(report_a, report_b):
    assert len(report_a.outcomes) == len(report_b.outcomes)
    for a, b in zip(report_a.outcomes, report_b.outcomes):
        assert a.ticket == b.ticket
        assert a.request == b.request
        assert result_signature(a) == result_signature(b)


class TestPlanShards:
    def test_round_robin_assignment(self, requests):
        plan = plan_shards(requests, 3)
        assert plan.routing == "round_robin"
        assert [shard.positions for shard in plan.shards] == [
            tuple(range(0, 24, 3)),
            tuple(range(1, 24, 3)),
            tuple(range(2, 24, 3)),
        ]

    def test_all_positions_covered_exactly_once(self, workload, requests):
        for routing in ("round_robin", "locality"):
            plan = plan_shards(requests, 5, routing=routing, graph=workload.graph)
            positions = sorted(p for shard in plan.shards for p in shard.positions)
            assert positions == list(range(len(requests)))

    def test_shards_balanced_within_one(self, workload, requests):
        for routing in ("round_robin", "locality"):
            plan = plan_shards(requests, 5, routing=routing, graph=workload.graph)
            sizes = [len(shard) for shard in plan.shards]
            assert max(sizes) - min(sizes) <= 1

    def test_locality_keeps_shards_contiguous_on_the_curve(self, workload, requests):
        plan = plan_shards(requests, 4, routing="locality", graph=workload.graph)
        # Deterministic per input.
        again = plan_shards(requests, 4, routing="locality", graph=workload.graph)
        assert plan == again

    def test_more_workers_than_requests_drops_empty_shards(self, requests):
        plan = plan_shards(requests[:3], 8)
        assert len(plan.shards) == 3
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_empty_batch(self, requests):
        assert plan_shards([], 4).shards == ()

    def test_errors(self, workload, requests):
        with pytest.raises(QueryError):
            plan_shards(requests, 0)
        with pytest.raises(QueryError):
            plan_shards(requests, 2, routing="weird")
        with pytest.raises(QueryError):
            plan_shards(requests, 2, routing="locality")  # graph missing


class TestSnapshotViews:
    def test_view_shares_pages_but_owns_buffer(self, storage):
        view_a = storage.snapshot_view()
        view_b = storage.snapshot_view()
        assert view_a.base is storage
        assert view_a.buffer is not view_b.buffer
        assert view_a.num_cost_types == storage.num_cost_types

    def test_view_reads_do_not_touch_base_counters(self, workload, storage):
        storage.reset_statistics(clear_buffer=True)
        view = storage.snapshot_view()
        node = next(iter(workload.graph.nodes()))
        records = view.adjacency(node.node_id)
        assert records == storage.adjacency(node.node_id)
        # The base's one adjacency() call is the only base-side work.
        assert storage.statistics.adjacency_requests == 1
        assert view.statistics.adjacency_requests == 1
        assert view.statistics.page_reads > 0

    def test_view_buffers_are_independent(self, workload, storage):
        view_a = storage.snapshot_view()
        view_b = storage.snapshot_view()
        node = next(iter(workload.graph.nodes())).node_id
        view_a.adjacency(node)
        cold_reads = view_b.statistics.page_reads
        view_b.adjacency(node)
        # view_b paid its own cold reads; view_a's warm buffer did not help it.
        assert view_b.statistics.page_reads > cold_reads

    def test_view_reset_statistics(self, workload, storage):
        view = storage.snapshot_view()
        view.adjacency(next(iter(workload.graph.nodes())).node_id)
        view.reset_statistics(clear_buffer=True)
        assert view.statistics.page_reads == 0
        assert view.buffer.resident_pages == 0

    def test_in_memory_snapshot_view(self, workload):
        accessor = InMemoryAccessor(workload.graph, workload.facilities)
        view = accessor.snapshot_view()
        node = next(iter(workload.graph.nodes())).node_id
        view.adjacency(node)
        assert view.statistics.adjacency_requests == 1
        assert accessor.statistics.adjacency_requests == 0

    def test_engine_accepts_view_as_accessor(self, workload, storage):
        view = storage.snapshot_view()
        engine = MCNQueryEngine(workload.graph, workload.facilities, accessor=view)
        assert engine.accessor is view
        assert engine.storage is None
        result = engine.skyline(workload.queries[0])
        assert len(result) >= 1

    def test_engine_rejects_storage_and_accessor_together(self, workload, storage):
        with pytest.raises(QueryError):
            MCNQueryEngine(
                workload.graph,
                workload.facilities,
                storage=storage,
                accessor=storage.snapshot_view(),
            )


class TestShardedQueryService:
    @pytest.fixture(scope="class")
    def sequential_report(self, engine, requests):
        engine.storage.reset_statistics(clear_buffer=True)
        return QueryService(engine).run_batch(requests)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("routing", ["round_robin", "locality"])
    def test_identical_results_and_order(
        self, engine, requests, sequential_report, executor, routing
    ):
        sharded = ShardedQueryService(engine, workers=3, routing=routing, executor=executor)
        report = sharded.run_batch(requests)
        assert_identical_ordering(sequential_report, report)

    def test_merged_counters_equal_shard_sums(self, engine, requests):
        report = ShardedQueryService(engine, workers=4, executor="thread").run_batch(requests)
        assert report.io.page_reads == sum(s.report.io.page_reads for s in report.shards)
        assert report.io.buffer_hits == sum(s.report.io.buffer_hits for s in report.shards)
        assert report.io.adjacency_requests == sum(
            s.report.io.adjacency_requests for s in report.shards
        )
        assert report.cache.record_hits == sum(s.report.cache.record_hits for s in report.shards)
        assert report.cache.record_misses == sum(
            s.report.cache.record_misses for s in report.shards
        )
        assert len(report.outcomes) == sum(s.size for s in report.shards)

    def test_process_pool_runs_in_distinct_processes(self, engine, requests):
        import os

        report = ShardedQueryService(engine, workers=2, executor="process").run_batch(requests)
        pids = {shard.pid for shard in report.shards}
        assert os.getpid() not in pids
        assert len(report.shards) == 2

    def test_single_worker_is_one_shard(self, engine, requests):
        report = ShardedQueryService(engine, workers=1, executor="serial").run_batch(requests)
        assert len(report.shards) == 1
        assert [o.ticket for o in report.outcomes] == list(range(len(requests)))

    def test_empty_batch(self, engine):
        report = ShardedQueryService(engine, workers=3, executor="serial").run_batch([])
        assert report.outcomes == [] and report.shards == []
        assert report.page_reads == 0

    def test_describe_includes_parallel_fields(self, engine, requests):
        report = ShardedQueryService(engine, workers=2, executor="serial").run_batch(requests)
        summary = report.describe()
        assert summary["workers"] == 2
        assert summary["routing"] == "round_robin"
        assert summary["executor"] == "serial"
        assert sum(summary["shards"]) == len(requests)

    def test_invalid_request_rejected_before_any_work(self, engine, requests):
        sharded = ShardedQueryService(engine, workers=2, executor="serial")
        with pytest.raises(QueryError):
            sharded.run_batch(requests + ["not a request"])

    def test_unpicklable_aggregate_rejected_for_process_executor(self, engine, workload):
        trace = [
            TopKRequest(workload.queries[0], k=2, aggregate=lambda costs: sum(costs)),
            TopKRequest(workload.queries[1], k=2, aggregate=lambda costs: max(costs)),
        ]
        sharded = ShardedQueryService(engine, workers=2, executor="process")
        with pytest.raises(QueryError, match="pickle"):
            sharded.run_batch(trace)
        # The thread executor handles the same batch fine.
        report = ShardedQueryService(engine, workers=2, executor="thread").run_batch(trace)
        assert len(report.outcomes) == 2

    def test_constructor_validation(self, engine):
        with pytest.raises(QueryError):
            ShardedQueryService(engine, workers=0)
        with pytest.raises(QueryError):
            ShardedQueryService(engine, routing="nearest")
        with pytest.raises(QueryError):
            ShardedQueryService(engine, executor="fiber")

    def test_memo_stays_per_worker(self, engine, workload):
        # The same request lands on the same round-robin shard twice: the
        # second occurrence must be a memo hit inside that worker.
        request = SkylineRequest(workload.queries[0])
        trace = [request, SkylineRequest(workload.queries[1]), request, SkylineRequest(workload.queries[1])]
        report = ShardedQueryService(engine, workers=2, executor="serial").run_batch(trace)
        assert report.memo_hits == 2
        assert_identical = [o.served_from_memo for o in report.outcomes]
        assert assert_identical == [False, False, True, True]


class TestParallelKnob:
    def test_run_batch_parallel_delegates(self, engine, requests):
        service = QueryService(engine)
        sequential = service.run_batch(requests)
        parallel = service.run_batch(
            requests, parallel=ParallelExecution(workers=2, executor="thread")
        )
        assert isinstance(parallel, ShardedBatchReport)
        assert_identical_ordering(sequential, parallel)

    def test_single_worker_config_stays_sequential(self, engine, requests):
        service = QueryService(engine)
        report = service.run_batch(requests[:4], parallel=ParallelExecution(workers=1))
        assert not isinstance(report, ShardedBatchReport)

    def test_parallel_execution_validation(self):
        with pytest.raises(QueryError):
            ParallelExecution(workers=0)
        with pytest.raises(QueryError):
            ParallelExecution(routing="hash")
        with pytest.raises(QueryError):
            ParallelExecution(executor="gpu")


class TestReplayDriverParallel:
    def test_replay_with_workers_adds_sharded_run(self):
        spec = ReplaySpec(
            workload=WorkloadSpec(
                num_nodes=150, num_facilities=60, num_cost_types=2, num_queries=12, seed=5
            ),
            mix="mixed",
            k=3,
            page_size=1024,
            workers=2,
            routing="locality",
            executor="serial",
        )
        report = replay_workload(spec)
        assert report.sharded is not None
        assert report.sharded.queries == 12
        assert report.identical_results
        assert report.counters_consistent
        assert len(report.measurements) == 3

    def test_replay_spec_validation(self):
        with pytest.raises(QueryError):
            ReplaySpec(workers=0)
        with pytest.raises(QueryError):
            ReplaySpec(routing="nope")
        with pytest.raises(QueryError):
            ReplaySpec(executor="nope")


class TestCLIArguments:
    def test_serve_batch_parallel_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve-batch", "--workers", "4", "--routing", "locality", "--executor", "thread"]
        )
        assert args.workers == 4
        assert args.routing == "locality"
        assert args.executor == "thread"

    def test_serve_batch_defaults_sequential(self):
        args = build_parser().parse_args(["serve-batch"])
        assert args.workers == 1
        assert args.routing == "round-robin"
        assert args.executor == "process"


class TestRoutingProperties:
    """Property tests: routing is pure partitioning, merging is pure summation."""

    @settings(max_examples=12, deadline=None)
    @given(
        workers=st.integers(min_value=2, max_value=5),
        subset_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_locality_routing_never_changes_results(self, engine, requests, workers, subset_seed):
        import random

        rng = random.Random(subset_seed)
        trace = rng.sample(requests, rng.randint(1, len(requests)))
        round_robin = ShardedQueryService(
            engine, workers=workers, routing="round_robin", executor="serial"
        ).run_batch(trace)
        locality = ShardedQueryService(
            engine, workers=workers, routing="locality", executor="serial"
        ).run_batch(trace)
        assert_identical_ordering(round_robin, locality)

    @settings(max_examples=12, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=6),
        routing=st.sampled_from(["round_robin", "locality"]),
    )
    def test_merged_counters_are_shard_sums(self, engine, requests, workers, routing):
        report = ShardedQueryService(
            engine, workers=workers, routing=routing, executor="serial"
        ).run_batch(requests)
        for counter in ("page_reads", "buffer_hits", "adjacency_requests", "facility_requests"):
            assert getattr(report.io, counter) == sum(
                getattr(shard.report.io, counter) for shard in report.shards
            )
        assert report.cache.seed_misses == sum(
            shard.report.cache.seed_misses for shard in report.shards
        )
