"""Async load-replay differential harness: the serving tier vs the library.

The serving tier promises more than "responses look right": because every
session call is serialised on one executor thread and stamped with a
``seq``, a concurrent workload served through the tier must be
**bit-identical** — result payloads, memo hits, per-request I/O counters —
to the same operations replayed *sequentially*, in ``seq`` order, against
a direct :class:`~repro.api.Session` / :class:`~repro.MonitoringService`
stack.  That is a much stronger property under the cross-query cache,
whose memo hits and I/O are order-dependent: it proves the tier adds
exactly zero semantic noise on top of the library.

The workload here runs ≥8 concurrent clients over the in-process
transport: mixed skyline/top-k queries (with duplicates, so memoization
order matters), facility insert/delete ticks through PATCH, batch jobs
with polling, and live subscriptions.  One client plays the updater so
ticks stay internally ordered; everything else races.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import Session
from repro.datagen import UpdateStreamSpec, WorkloadSpec, make_update_stream, make_workload
from repro.monitor.stream import tick_from_payload, tick_to_payload
from repro.network.facilities import FacilitySet
from repro.serve import (
    InProcessClient,
    ServeApp,
    ServeConfig,
    batch_response_to_payload,
    collect_events,
    query_response_to_payload,
    tick_response_to_payload,
)
from repro.service.requests import (
    SkylineRequest,
    TopKRequest,
    request_from_payload,
    request_to_payload,
)

NUM_CLIENTS = 8

_WORKLOAD = make_workload(
    WorkloadSpec(
        num_nodes=150,
        num_facilities=50,
        num_cost_types=2,
        num_queries=10,
        seed=77,
    )
)

_TICKS = [
    tick_to_payload(tick)
    for tick in make_update_stream(
        _WORKLOAD.graph,
        _WORKLOAD.facilities,
        UpdateStreamSpec(
            num_ticks=4,
            updates_per_tick=3,
            insert_fraction=0.5,
            delete_fraction=0.5,
            relocate_fraction=0.0,
            seed=78,
        ),
        subscription_ids=[],
    )
]


def _fresh_facilities() -> FacilitySet:
    return FacilitySet(_WORKLOAD.graph, iter(_WORKLOAD.facilities))


def _request_payloads():
    payloads = []
    for index, query in enumerate(_WORKLOAD.queries):
        if index % 2 == 0:
            payloads.append(request_to_payload(SkylineRequest(query)))
        else:
            payloads.append(
                request_to_payload(TopKRequest(query, 3, weights=(0.6, 0.4)))
            )
    return payloads


def _build_ops():
    """The mixed workload, as JSON payloads both sides decode identically."""
    requests = _request_payloads()
    ops = []
    # 16 queries: every request once, the first six twice (memo pressure).
    for index, payload in enumerate(requests + requests[:6]):
        ops.append({"id": f"q{index}", "kind": "query", "request": payload})
    for index, updates in enumerate(_TICKS):
        ops.append({"id": f"t{index}", "kind": "tick", "updates": updates})
    ops.append({"id": "b0", "kind": "batch", "requests": requests[:3]})
    ops.append({"id": "b1", "kind": "batch", "requests": requests[3:6]})
    ops.append({"id": "s0", "kind": "subscribe", "request": requests[0]})
    ops.append({"id": "s1", "kind": "subscribe", "request": requests[1]})
    return ops


def _strip_timing(payload):
    """Drop wall-clock fields; everything else must match bit-for-bit."""
    if isinstance(payload, dict):
        return {
            key: _strip_timing(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [_strip_timing(item) for item in payload]
    return payload


async def _run_op(client: InProcessClient, op, results):
    if op["kind"] == "query":
        response = await client.post("/v1/query", {"request": op["request"]})
        assert response.status == 200, response.payload
        results[op["id"]] = response.payload
    elif op["kind"] == "tick":
        response = await client.patch("/v1/facilities", {"updates": op["updates"]})
        assert response.status == 200, response.payload
        results[op["id"]] = response.payload
    elif op["kind"] == "batch":
        response = await client.post("/v1/batch", {"requests": op["requests"]})
        assert response.status == 202, response.payload
        job = response.payload["job"]
        while True:
            poll = await client.get(f"/v1/batch/{job}")
            if poll.payload["state"] in ("done", "failed"):
                break
            await asyncio.sleep(0.002)
        assert poll.payload["state"] == "done", poll.payload
        results[op["id"]] = poll.payload["result"]
    elif op["kind"] == "subscribe":
        response = await client.post("/v1/subscriptions", {"request": op["request"]})
        assert response.status == 201, response.payload
        results[op["id"]] = response.payload
    else:  # pragma: no cover - workload construction bug
        raise AssertionError(op)


async def _serve_workload(ops):
    """Run ``ops`` through the tier under real concurrency; return payloads."""
    session = Session(_WORKLOAD.graph, _fresh_facilities())
    app = ServeApp(session, config=ServeConfig(request_timeout_seconds=60.0))
    client = InProcessClient(app)
    results: dict[str, dict] = {}
    # Client 0 is the updater (ticks stay internally ordered); the other
    # NUM_CLIENTS - 1 clients race the rest of the workload between them.
    lanes = [[] for _ in range(NUM_CLIENTS)]
    other = 0
    for op in ops:
        if op["kind"] == "tick":
            lanes[0].append(op)
        else:
            lanes[1 + other % (NUM_CLIENTS - 1)].append(op)
            other += 1

    async def worker(lane):
        for op in lane:
            await _run_op(client, op, results)

    async with app:
        await asyncio.gather(*(worker(lane) for lane in lanes))
        metrics = (await client.get("/v1/metrics")).payload
    return results, metrics


def _replay_workload(ops, serve_results):
    """Replay the same ops in ``seq`` order against the direct library stack."""
    session = Session(_WORKLOAD.graph, _fresh_facilities())
    handle = None
    expected: dict[str, dict] = {}
    ordered = sorted(ops, key=lambda op: serve_results[op["id"]]["seq"])
    for op in ordered:
        seq = serve_results[op["id"]]["seq"]
        if op["kind"] == "query":
            response = session.query(request_from_payload(op["request"]))
            expected[op["id"]] = {"seq": seq, **query_response_to_payload(response)}
        elif op["kind"] == "tick":
            if handle is None:
                handle = session.monitor(())
            response = handle.tick(tick_from_payload(op["updates"]))
            invalidated = session.invalidate_result_caches()
            expected[op["id"]] = {
                "seq": seq,
                "invalidated_services": invalidated,
                **tick_response_to_payload(response),
            }
        elif op["kind"] == "batch":
            report = session.run_batch(
                [request_from_payload(entry) for entry in op["requests"]]
            )
            expected[op["id"]] = {"seq": seq, **batch_response_to_payload(report)}
        elif op["kind"] == "subscribe":
            sub = session.monitor([request_from_payload(op["request"])])
            sid = sub.subscription_ids[0]
            signature = sub.service.result_signature(sid)
            request = sub.service.request_of(sid)
            facilities = [
                [fid, list(value) if isinstance(value, tuple) else value]
                for fid, value in sorted(signature.items())
            ]
            expected[op["id"]] = {
                "seq": seq,
                "subscription": sid,
                "kind": "skyline" if isinstance(request, SkylineRequest) else "topk",
                "size": len(facilities),
                "result": facilities,
            }
    session.close()
    return expected


@pytest.fixture(scope="module")
def outcome():
    ops = _build_ops()
    served, metrics = asyncio.run(_serve_workload(ops))
    expected = _replay_workload(ops, served)
    return ops, served, expected, metrics


class TestLoadReplayDifferential:
    def test_every_op_answered(self, outcome):
        ops, served, expected, _metrics = outcome
        assert set(served) == {op["id"] for op in ops} == set(expected)

    def test_seq_stamps_are_a_dense_total_order(self, outcome):
        ops, served, _expected, _metrics = outcome
        seqs = sorted(payload["seq"] for payload in served.values())
        assert seqs == list(range(len(ops)))

    @pytest.mark.parametrize("kind", ["query", "tick", "batch", "subscribe"])
    def test_payloads_bit_identical_to_sequential_replay(self, outcome, kind):
        ops, served, expected, _metrics = outcome
        compared = 0
        for op in ops:
            if op["kind"] != kind:
                continue
            assert _strip_timing(served[op["id"]]) == _strip_timing(
                expected[op["id"]]
            ), op["id"]
            compared += 1
        assert compared > 0

    def test_payloads_survive_json_round_trip(self, outcome):
        _ops, served, _expected, _metrics = outcome
        for op_id, payload in served.items():
            assert json.loads(json.dumps(payload)) == payload, op_id

    def test_memoization_order_was_exercised_and_reproduced(self):
        # Tick-free workload: with no cache invalidation, the second run of
        # each duplicated request — whichever lane gets there second — must
        # be a memo hit, and the replay must reproduce the exact hit set.
        requests = _request_payloads()[:3]
        ops = [
            {"id": f"m{index}", "kind": "query", "request": payload}
            for index, payload in enumerate(requests + requests)
        ]
        served, _metrics = asyncio.run(_serve_workload(ops))
        expected = _replay_workload(ops, served)
        memo_hits = [
            op["id"] for op in ops if served[op["id"]]["served_from_memo"]
        ]
        assert len(memo_hits) == 3  # one hit per duplicated request
        for op in ops:
            assert (
                served[op["id"]]["served_from_memo"]
                == expected[op["id"]]["served_from_memo"]
            ), op["id"]

    def test_io_counters_bit_identical(self, outcome):
        ops, served, expected, _metrics = outcome
        for op in ops:
            assert served[op["id"]].get("io") == expected[op["id"]].get("io"), op["id"]

    def test_ticks_reported_every_subscription_delta(self, outcome):
        ops, served, _expected, _metrics = outcome
        tick_ids = [op["id"] for op in ops if op["kind"] == "tick"]
        indices = sorted(served[op_id]["index"] for op_id in tick_ids)
        assert indices == list(range(len(tick_ids)))

    def test_metrics_counts_cover_the_workload(self, outcome):
        ops, _served, _expected, metrics = outcome
        assert metrics["requests"] > len(ops)  # polls and /metrics add more
        assert metrics["errors"] == 0 and metrics["timeouts"] == 0
        assert metrics["jobs"] == {"queued": 0, "running": 0, "done": 2, "failed": 0}
        assert metrics["admission"]["rejected"] == 0
        num_queries = sum(1 for op in ops if op["kind"] == "query")
        assert metrics["endpoints"]["query"]["count"] == num_queries

    def test_latency_percentiles_sane(self, outcome):
        _ops, _served, _expected, metrics = outcome
        for label, summary in metrics["endpoints"].items():
            assert summary["p50_ms"] <= summary["p90_ms"] <= summary["p99_ms"], label
            assert summary["max_ms"] >= summary["p99_ms"] * (1 - 1e-9), label
            assert summary["count"] > 0, label
        assert metrics["session"]["query"]["count"] > 0

    def test_workload_used_at_least_eight_clients(self, outcome):
        # Structural: the harness is only honest if the lane split really
        # fans out.  NUM_CLIENTS lanes, all non-empty.
        ops = _build_ops()
        kinds = {"tick": 0, "other": 0}
        for op in ops:
            kinds["tick" if op["kind"] == "tick" else "other"] += 1
        assert NUM_CLIENTS >= 8
        assert kinds["other"] >= NUM_CLIENTS - 1  # every racing lane gets work


class TestStreamingDifferential:
    def test_sse_deltas_match_the_tick_reports(self):
        async def scenario():
            session = Session(_WORKLOAD.graph, _fresh_facilities())
            app = ServeApp(session, config=ServeConfig(request_timeout_seconds=60.0))
            client = InProcessClient(app)
            async with app:
                subscribe = await client.post(
                    "/v1/subscriptions", {"request": _request_payloads()[0]}
                )
                sid = subscribe.payload["subscription"]
                stream = await client.stream(sid)
                tick_payloads = []
                for updates in _TICKS:
                    response = await client.patch(
                        "/v1/facilities", {"updates": updates}
                    )
                    assert response.status == 200
                    tick_payloads.append(response.payload)
                events = await collect_events(stream, limit=1 + len(_TICKS))
                return subscribe.payload, tick_payloads, events

        subscribe_payload, tick_payloads, events = asyncio.run(scenario())
        assert events[0].event == "init"
        assert events[0].data["subscription"] == subscribe_payload["subscription"]
        assert events[0].data["facilities"] == subscribe_payload["result"]
        deltas = events[1:]
        assert [event.event for event in deltas] == ["delta"] * len(_TICKS)
        for tick_payload, event in zip(tick_payloads, deltas):
            mine = [
                delta
                for delta in tick_payload["deltas"]
                if delta["subscription"] == subscribe_payload["subscription"]
            ]
            assert len(mine) == 1
            assert event.data == {"tick": tick_payload["index"], **mine[0]}

    def test_two_streams_of_one_subscription_see_identical_events(self):
        async def scenario():
            session = Session(_WORKLOAD.graph, _fresh_facilities())
            app = ServeApp(session, config=ServeConfig(request_timeout_seconds=60.0))
            client = InProcessClient(app)
            async with app:
                subscribe = await client.post(
                    "/v1/subscriptions", {"request": _request_payloads()[1]}
                )
                sid = subscribe.payload["subscription"]
                first = await client.stream(sid)
                second = await client.stream(sid)
                await client.patch("/v1/facilities", {"updates": _TICKS[0]})
                events = await asyncio.gather(
                    collect_events(first, limit=2), collect_events(second, limit=2)
                )
                return events

        first_events, second_events = asyncio.run(scenario())
        assert first_events == second_events
        assert [event.event for event in first_events] == ["init", "delta"]
