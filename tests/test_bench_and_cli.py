"""Tests for the benchmark harness (config, runner, experiments, reporting) and the CLI."""

from __future__ import annotations

import pytest

from repro.bench.config import DEFAULT_SCALE, PAPER_SCALE, SMALL_SCALE, ExperimentConfig
from repro.bench.driver import (
    ServeReplayReport,
    ServeReplaySpec,
    format_serve_report,
    replay_serve_workload,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_probing_policy,
    ablation_versus_baseline,
    effect_of_distribution,
    run_experiment,
)
from repro.bench.reporting import format_series_table, series_to_csv, summarize_speedups
from repro.bench.runner import build_environment, run_skyline_trial, run_topk_trial
from repro.cli import build_parser, main
from repro.datagen.cost_models import CostDistribution
from repro.datagen.workload import WorkloadSpec
from repro.errors import QueryError, ReproError

#: A deliberately tiny configuration so harness tests stay fast.
TINY = ExperimentConfig(
    num_nodes=120,
    num_facilities=50,
    num_cost_types=2,
    page_size=512,
    num_queries=2,
    k=2,
    seed=3,
)


class TestExperimentConfig:
    def test_defaults_for_scale(self):
        config = ExperimentConfig.defaults_for(SMALL_SCALE)
        assert config.num_facilities == SMALL_SCALE.default_facilities
        assert config.num_cost_types == SMALL_SCALE.default_cost_types

    def test_with_replaces_fields(self):
        config = TINY.with_(k=7, num_facilities=99)
        assert config.k == 7 and config.num_facilities == 99
        assert TINY.k == 2  # original unchanged

    def test_invalid_values_rejected(self):
        with pytest.raises(QueryError):
            ExperimentConfig(k=0)
        with pytest.raises(QueryError):
            ExperimentConfig(num_cost_types=0)
        with pytest.raises(QueryError):
            ExperimentConfig(num_queries=0)

    def test_scales_expose_sweeps(self):
        for scale in (SMALL_SCALE, DEFAULT_SCALE, PAPER_SCALE):
            assert len(scale.sweep_facilities()) == 5
            assert scale.sweep_cost_types() == (2, 3, 4, 5)
            assert scale.sweep_k() == (1, 2, 4, 8, 16)
            assert 0.0 in scale.sweep_buffers()

    def test_paper_scale_documents_original_populations(self):
        assert PAPER_SCALE.num_nodes == 174_956
        assert PAPER_SCALE.default_facilities == 100_000


class TestRunner:
    def test_build_environment(self):
        workload, storage = build_environment(TINY)
        assert len(workload.queries) == TINY.num_queries
        assert storage.config.page_size == TINY.page_size

    def test_skyline_trial_metrics(self):
        trial = run_skyline_trial(TINY)
        assert set(trial.measurements) == {"lsa", "cea"}
        for measurement in trial.measurements.values():
            assert measurement.queries == TINY.num_queries
            assert measurement.mean_page_reads > 0
            assert measurement.mean_result_size >= 1
        assert trial.speedup() >= 1.0

    def test_topk_trial_metrics(self):
        trial = run_topk_trial(TINY)
        for measurement in trial.measurements.values():
            assert measurement.queries == TINY.num_queries
            assert measurement.mean_result_size == pytest.approx(TINY.k)

    def test_trial_reuses_environment(self):
        environment = build_environment(TINY)
        first = run_skyline_trial(TINY, environment=environment)
        second = run_skyline_trial(TINY, environment=environment)
        assert first.measurements["cea"].mean_page_reads == pytest.approx(
            second.measurements["cea"].mean_page_reads
        )

    def test_baseline_algorithm_supported(self):
        trial = run_skyline_trial(TINY, algorithms=("baseline", "cea"))
        assert trial.measurements["baseline"].mean_page_reads > trial.measurements["cea"].mean_page_reads


class TestExperiments:
    def test_registry_covers_every_figure(self):
        expected = {"fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b", "fig12"}
        assert expected.issubset(set(EXPERIMENTS))

    def test_unknown_experiment_rejected(self):
        with pytest.raises(QueryError):
            run_experiment("fig99", SMALL_SCALE)

    def test_distribution_experiment_structure(self):
        tiny_scale = SMALL_SCALE
        series = effect_of_distribution("skyline", tiny_scale.__class__(
            name="tiny",
            num_nodes=120,
            facility_counts=(30, 60, 90, 120, 150),
            default_facilities=60,
            cost_type_counts=(2, 3, 4, 5),
            default_cost_types=2,
            buffer_fractions=(0.0, 0.01, 0.02, 0.03, 0.04),
            default_buffer_fraction=0.01,
            k_values=(1, 2, 4, 8, 16),
            default_k=2,
            num_queries=2,
            page_size=512,
        ))
        assert [row.value for row in series.rows] == [
            CostDistribution.ANTI_CORRELATED.value,
            CostDistribution.INDEPENDENT.value,
            CostDistribution.CORRELATED.value,
        ]
        assert series.algorithms() == ["lsa", "cea"]
        curve = series.series("cea")
        assert len(curve) == 3

    def test_ablation_probing_rows(self):
        scale = SMALL_SCALE.__class__(
            name="tiny",
            num_nodes=120,
            facility_counts=(30,) * 5,
            default_facilities=40,
            cost_type_counts=(2, 3, 4, 5),
            default_cost_types=2,
            buffer_fractions=(0.0, 0.01, 0.01, 0.01, 0.02),
            default_buffer_fraction=0.01,
            k_values=(1, 2, 4, 8, 16),
            default_k=2,
            num_queries=1,
            page_size=512,
        )
        series = ablation_probing_policy(scale)
        assert [row.value for row in series.rows] == ["round-robin", "smallest-first", "largest-first"]

    def test_ablation_baseline_includes_three_algorithms(self):
        scale = SMALL_SCALE.__class__(
            name="tiny",
            num_nodes=100,
            facility_counts=(30,) * 5,
            default_facilities=30,
            cost_type_counts=(2, 3, 4, 5),
            default_cost_types=2,
            buffer_fractions=(0.0,) * 5,
            default_buffer_fraction=0.01,
            k_values=(1, 2, 4, 8, 16),
            default_k=2,
            num_queries=1,
            page_size=512,
        )
        series = ablation_versus_baseline(scale)
        assert set(series.rows[0].trial.measurements) == {"baseline", "lsa", "cea"}


class TestReporting:
    @pytest.fixture(scope="class")
    def series(self):
        scale = SMALL_SCALE.__class__(
            name="tiny",
            num_nodes=100,
            facility_counts=(30,) * 5,
            default_facilities=30,
            cost_type_counts=(2, 3, 4, 5),
            default_cost_types=2,
            buffer_fractions=(0.0, 0.02, 0.02, 0.02, 0.02),
            default_buffer_fraction=0.01,
            k_values=(1, 2, 4, 8, 16),
            default_k=2,
            num_queries=1,
            page_size=512,
        )
        return effect_of_distribution("skyline", scale)

    def test_table_contains_all_rows(self, series):
        table = format_series_table(series)
        assert "anti-correlated" in table and "correlated" in table
        assert "lsa" in table and "cea" in table
        assert series.figure in table

    def test_csv_has_header_and_rows(self, series):
        csv_text = series_to_csv(series)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("experiment,figure")
        assert len(lines) == 1 + 3 * 2  # three sweep points x two algorithms

    def test_speedup_summary(self, series):
        summary = summarize_speedups(series)
        assert summary.count("x") >= 3


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        assert parser.parse_args(["demo"]).command == "demo"
        assert parser.parse_args(["list"]).command == "list"
        args = parser.parse_args(["experiment", "fig12", "--scale", "small"])
        assert args.name == "fig12" and args.scale == "small"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig8a" in output and "fig12" in output

    def test_demo_command(self, capsys):
        assert main(["demo", "--nodes", "150", "--facilities", "60", "--cost-types", "2", "--k", "2"]) == 0
        output = capsys.readouterr().out
        assert "[skyline/lsa]" in output and "[top-2/cea]" in output

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestServeReplay:
    """The async load-replay bench mode behind ``repro-mcn serve --replay``."""

    SPEC = ServeReplaySpec(
        workload=WorkloadSpec(
            num_nodes=120, num_facilities=30, num_cost_types=2, num_queries=6, seed=11
        ),
        duplicates=3,
        ticks=2,
        updates_per_tick=2,
        clients=4,
    )

    @pytest.fixture(scope="class")
    def report(self):
        return replay_serve_workload(self.SPEC)

    def test_served_concurrency_matches_the_sequential_oracle(self, report):
        assert report.identical_payloads
        assert report.mismatched_ops == []

    def test_io_counters_match_the_sequential_oracle(self, report):
        assert report.identical_io
        assert report.mismatched_io_ops == []
        assert report.clean

    def test_trace_shape(self, report):
        assert report.queries == 6 + 3
        assert report.ticks == 2
        assert report.operations == 11

    def test_metrics_cover_the_trace(self, report):
        assert report.metrics["errors"] == 0 and report.metrics["timeouts"] == 0
        assert report.metrics["endpoints"]["query"]["count"] == report.queries
        assert report.metrics["endpoints"]["patch"]["count"] == report.ticks
        assert report.operations_per_second > 0
        assert report.overhead > 0

    def test_format_serve_report(self, report):
        text = format_serve_report(report)
        assert "payloads identical to sequential replay: yes" in text
        assert "I/O counters identical to sequential replay: yes" in text
        assert "query" in text and "patch" in text
        assert "admission:" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mix": "everything"},
            {"k": 0},
            {"clients": 1},
            {"duplicates": -1},
            {"ticks": -2},
            {"max_in_flight": 0},
            {"timeout_seconds": -1.0},
        ],
    )
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ReproError):
            ServeReplaySpec(**kwargs)

    def test_serve_replay_command(self, capsys):
        code = main(
            [
                "serve",
                "--replay",
                "--nodes", "120",
                "--facilities", "30",
                "--cost-types", "2",
                "--queries", "4",
                "--ticks", "1",
                "--clients", "4",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0, output
        assert "payloads identical to sequential replay: yes" in output
        assert "I/O counters identical to sequential replay: yes" in output

    @pytest.mark.parametrize(
        "payloads_ok, io_ok",
        [(False, True), (True, False), (False, False)],
    )
    def test_serve_replay_exits_nonzero_on_any_mismatch(
        self, monkeypatch, capsys, payloads_ok, io_ok
    ):
        # The CLI's exit code is the differential verdict: a payload mismatch
        # OR an I/O-counter mismatch must fail the run, not just print "NO".
        import repro.cli as cli

        def fake_replay(spec):
            return ServeReplayReport(
                spec=spec,
                queries=1,
                ticks=0,
                served_seconds=0.01,
                sequential_seconds=0.01,
                metrics={},
                identical_payloads=payloads_ok,
                mismatched_ops=[] if payloads_ok else ["query[0]"],
                identical_io=io_ok,
                mismatched_io_ops=[] if io_ok else ["query[0]"],
            )

        monkeypatch.setattr(cli, "replay_serve_workload", fake_replay)
        code = cli.main(["serve", "--replay", "--nodes", "120", "--facilities", "30"])
        output = capsys.readouterr().out
        assert code == 1, output
        if not payloads_ok:
            assert "payloads identical to sequential replay: NO" in output
            assert "mismatched ops: query[0]" in output
        if not io_ok:
            assert "I/O counters identical to sequential replay: NO" in output
            assert "I/O-mismatched ops: query[0]" in output

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert not args.replay
        assert (args.clients, args.max_in_flight) == (8, 8)
        assert args.port == 8737


class TestColdCacheBench:
    """CI-scale smoke over the cold-cache family: tiny grid, full parity."""

    def test_bad_specs_rejected(self):
        from repro.bench.coldcache import ColdCacheSpec

        with pytest.raises(QueryError, match="buffer fraction"):
            ColdCacheSpec(buffer_fraction=0.0)
        with pytest.raises(QueryError, match="at least one query"):
            ColdCacheSpec(num_queries=0)

    def test_tiny_grid_has_full_parity(self, tmp_path):
        from repro.bench.coldcache import ColdCacheSpec, run_cold_cache_bench
        from repro.datagen.road_network import PackedDatasetSpec

        spec = ColdCacheSpec(
            dataset=PackedDatasetSpec(rows=8, cols=8, num_facilities=12, page_size=512),
            buffer_fraction=0.05,
            num_queries=4,
        )
        pack = tmp_path / "cold.mcnpack"
        report = run_cold_cache_bench(spec, pack_path=str(pack), keep_pack=True)
        assert pack.exists()
        assert report.io_identical is True
        assert report.results_identical is True
        assert report.page_reads > 0
        assert report.buffer_capacity >= 1
        assert len(report.skyline_sizes) == len(spec.query_nodes())
        payload = report.to_payload()
        assert payload["simulated"]["io_identical"] is True
        assert payload["checksum"] == report.checksum

    def test_no_compare_leaves_parity_unknown(self):
        from repro.bench.coldcache import ColdCacheSpec, run_cold_cache_bench
        from repro.datagen.road_network import PackedDatasetSpec

        spec = ColdCacheSpec(
            dataset=PackedDatasetSpec(rows=6, cols=6, num_facilities=8),
            num_queries=3,
            compare_simulated=False,
        )
        report = run_cold_cache_bench(spec)
        assert report.io_identical is None
        assert report.results_identical is None
        assert "simulated" not in report.to_payload()

    def test_cli_parser_defaults(self):
        args = build_parser().parse_args(["bench", "cold-cache"])
        assert args.bench_command == "cold-cache"
        assert args.buffer_fraction == 0.01
        assert args.queries == 16
        assert not args.no_compare
        assert args.pack is None

    def test_cli_smoke_reports_parity(self, tmp_path, capsys):
        output_path = tmp_path / "cold.json"
        code = main(
            [
                "bench", "cold-cache",
                "--rows", "8",
                "--cols", "8",
                "--facilities", "12",
                "--page-size", "512",
                "--queries", "4",
                "--buffer-fraction", "0.05",
                "--output", str(output_path),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0, output
        assert "page-read parity with SimulatedDisk: yes" in output
        assert "results identical to SimulatedDisk: yes" in output
        assert output_path.exists()


class TestTimedepBench:
    """CI-scale smoke over the timedep replay family."""

    #: Tiny rush hour with an off-peak tail: ticks past the peak re-profile
    #: nothing, which is where incremental maintenance pulls ahead.
    def _spec(self, **overrides):
        from repro.bench.timedep import TimedepBenchSpec
        from repro.datagen.updates import EdgeCostStreamSpec

        settings = {
            "workload": WorkloadSpec(
                num_nodes=100, num_facilities=24, num_cost_types=2,
                num_queries=4, seed=13,
            ),
            "stream": EdgeCostStreamSpec(
                num_ticks=10, start_time=6.0, time_step=0.5,
                affected_fraction=0.25, seed=14,
            ),
        }
        settings.update(overrides)
        return TimedepBenchSpec(**settings)

    def test_bad_specs_rejected(self):
        with pytest.raises(QueryError, match="at least one subscription"):
            self._spec(
                workload=WorkloadSpec(
                    num_nodes=100, num_facilities=24, num_cost_types=2,
                    num_queries=0, seed=13,
                )
            )
        with pytest.raises(QueryError, match="k must be"):
            self._spec(k=0)

    def test_incremental_replay_beats_rebuild_every_tick(self):
        from repro.bench.timedep import format_timedep_report, run_timedep_bench

        report = run_timedep_bench(self._spec())
        # The bench is its own differential oracle...
        assert report.results_identical is True
        # ...and the acceptance criterion: the incremental path does
        # measurably less logical work than rebuilding every tick.
        assert report.empty_ticks > 0
        assert report.rebuild.total_requests > report.incremental.total_requests
        assert report.work_ratio is not None and report.work_ratio > 1.0
        assert report.incremental.services_built == 1
        assert report.rebuild.services_built == report.spec.stream.num_ticks
        assert report.incremental.edge_cost_refreshes > 0
        assert report.probe is not None
        assert report.probe.builds + report.probe.hits == report.probe.queries
        assert report.probe.hits > 0
        output = format_timedep_report(report)
        assert "final answers identical across legs: yes" in output
        assert "snapshot probe" in output
        payload = report.to_payload()
        assert payload["results_identical"] is True
        assert payload["work_ratio"] > 1.0

    def test_no_probe_skips_the_snapshot_leg(self):
        from repro.bench.timedep import format_timedep_report, run_timedep_bench

        report = run_timedep_bench(self._spec(probe_snapshots=False))
        assert report.probe is None
        assert "snapshot_probe" not in report.to_payload()
        assert "snapshot probe" not in format_timedep_report(report)

    def test_cli_parser_defaults(self):
        args = build_parser().parse_args(["bench", "timedep"])
        assert args.bench_command == "timedep"
        assert (args.nodes, args.facilities, args.subscriptions) == (300, 60, 6)
        assert (args.ticks, args.start_time, args.time_step) == (24, 6.0, 0.5)
        assert not args.no_probe

    def test_cli_smoke_reports_the_work_ratio(self, tmp_path, capsys):
        output_path = tmp_path / "timedep.json"
        code = main(
            [
                "bench", "timedep",
                "--nodes", "100",
                "--facilities", "24",
                "--subscriptions", "4",
                "--ticks", "10",
                "--seed", "13",
                "--output", str(output_path),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0, output
        assert "final answers identical across legs: yes" in output
        assert "the accessor requests of the incremental path" in output
        assert output_path.exists()
