"""Property tests for the batched heap-sift primitive and the selection layer.

:class:`~repro.core.vector.ColumnarFrontier` is the one data structure the
vectorised kernel's bit-identity rests on: its pop order must be
indistinguishable from a raw ``heapq`` driven by per-entry pushes with a
monotone tie counter — including exact key ties, where the integer counter
is the only thing keeping the order deterministic.  The Hypothesis drain
suite here interleaves single pushes, block extends (both the sift-up and
the append-and-reheapify path) and pops, and compares pop by pop against
the reference.
"""

from __future__ import annotations

import heapq
import os
from unittest import mock

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.policy import ExecutionPolicy, resolve_vector, vector_env_default
from repro.core.kernel import ExpansionKernel
from repro.core.vector import (
    NUMPY_AVAILABLE,
    ColumnarFrontier,
    VectorExpansionKernel,
    kernel_class_for,
)
from repro.errors import PolicyError


class HeapqReference:
    """The semantics the frontier must match: heapq + monotone tie counter."""

    def __init__(self) -> None:
        self.heap: list[tuple] = []
        self.count = 0

    def push(self, key: float, payload: object) -> None:
        self.count += 1
        heapq.heappush(self.heap, (key, self.count, payload))

    def extend(self, keys, payloads) -> None:
        for key, payload in zip(keys, payloads):
            self.push(key, payload)

    def pop(self) -> tuple:
        return heapq.heappop(self.heap)

    def head_key(self) -> float:
        return self.heap[0][0] if self.heap else float("inf")


# Few distinct keys → plenty of exact cost ties, the regime where only the
# push-order counter keeps the pop order deterministic.
_KEYS = st.sampled_from([0.0, 1.0, 1.5, 2.0, 2.5, 3.0])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _KEYS),
        st.tuples(st.just("extend"), st.lists(_KEYS, min_size=0, max_size=40)),
        st.tuples(st.just("pop"), st.none()),
    ),
    min_size=1,
    max_size=60,
)


class TestFrontierDrainParity:
    @settings(max_examples=200, deadline=None)
    @given(ops=_OPS)
    def test_interleaved_ops_pop_identically(self, ops):
        frontier = ColumnarFrontier()
        reference = HeapqReference()
        serial = 0
        for op, value in ops:
            if op == "push":
                serial += 1
                frontier.push(value, serial)
                reference.push(value, serial)
            elif op == "extend":
                payloads = list(range(serial + 1, serial + 1 + len(value)))
                serial += len(value)
                frontier.extend(value, payloads)
                reference.extend(value, payloads)
            else:
                assert frontier.head_key() == reference.head_key()
                if reference.heap:
                    assert frontier.pop() == reference.pop()
                assert len(frontier) == len(reference.heap)
                assert frontier.count == reference.count
        # Full drain: every remaining entry in exactly reference order.
        assert frontier.head_key() == reference.head_key()
        while reference.heap:
            assert frontier.pop() == reference.pop()
        assert len(frontier) == 0
        assert frontier.head_key() == float("inf")

    @settings(max_examples=50, deadline=None)
    @given(
        prefix=st.lists(_KEYS, min_size=0, max_size=10),
        block=st.lists(_KEYS, min_size=9, max_size=64),
    )
    def test_reheapify_path_matches_sift_path(self, prefix, block):
        """A block big enough to trigger heapify pops like k single pushes.

        ``extend`` switches to append-and-reheapify when the block dwarfs
        the heap; the internal array layout may then differ from repeated
        sift-ups, but the pop stream must not.
        """
        sifted = ColumnarFrontier()
        bulk = ColumnarFrontier()
        for index, key in enumerate(prefix):
            sifted.push(key, index)
            bulk.push(key, index)
        payloads = list(range(100, 100 + len(block)))
        for key, payload in zip(block, payloads):
            sifted.push(key, payload)
        bulk.extend(block, payloads)
        assert len(block) > max(8, len(prefix) >> 3)  # the heapify branch ran
        assert bulk.count == sifted.count
        while len(sifted):
            assert bulk.pop() == sifted.pop()
        assert len(bulk) == 0

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not importable")
    def test_extend_accepts_numpy_arrays(self):
        import numpy as np

        frontier = ColumnarFrontier()
        reference = HeapqReference()
        keys = np.asarray([3.0, 1.0, 2.0, 1.0], dtype=np.float64)
        payloads = ["a", "b", "c", "d"]
        frontier.extend(keys, payloads)
        reference.extend(keys.tolist(), payloads)
        while reference.heap:
            assert frontier.pop() == reference.pop()


class TestKernelSelection:
    def test_explicit_flags(self):
        assert kernel_class_for(False) is ExpansionKernel
        if NUMPY_AVAILABLE:
            assert kernel_class_for(True) is VectorExpansionKernel

    def test_env_toggle_disables_vectorisation(self):
        with mock.patch.dict(os.environ, {"REPRO_VECTOR": "0"}):
            assert vector_env_default() is False
            assert kernel_class_for(None) is ExpansionKernel
        with mock.patch.dict(os.environ, {"REPRO_VECTOR": ""}):
            assert vector_env_default() is NUMPY_AVAILABLE

    def test_policy_modes(self):
        assert resolve_vector("off") is False
        assert ExecutionPolicy(vector="off").resolved_vector() is False
        assert ExecutionPolicy().vector == "auto"
        if NUMPY_AVAILABLE:
            assert resolve_vector("on") is True
        with pytest.raises(PolicyError):
            resolve_vector("sideways")
        with pytest.raises(PolicyError):
            ExecutionPolicy(vector="sideways")
