"""Unit tests for aggregate cost functions."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregates import MaxCost, WeightedLpNorm, WeightedSum, check_monotone
from repro.errors import QueryError


class TestWeightedSum:
    def test_basic_evaluation(self):
        aggregate = WeightedSum((0.9, 0.1))
        assert aggregate((10.0, 20.0)) == pytest.approx(11.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(QueryError):
            WeightedSum((1.0, 1.0))((1.0,))

    def test_empty_weights_rejected(self):
        with pytest.raises(QueryError):
            WeightedSum(())

    def test_negative_weight_rejected(self):
        with pytest.raises(QueryError):
            WeightedSum((0.5, -0.1))

    def test_all_zero_weights_rejected(self):
        with pytest.raises(QueryError):
            WeightedSum((0.0, 0.0))

    def test_uniform_weights_sum_to_one(self):
        aggregate = WeightedSum.uniform(4)
        assert sum(aggregate.weights) == pytest.approx(1.0)
        assert aggregate((1.0, 1.0, 1.0, 1.0)) == pytest.approx(1.0)

    def test_uniform_requires_positive_dimension(self):
        with pytest.raises(QueryError):
            WeightedSum.uniform(0)

    def test_random_weights_in_unit_interval(self):
        aggregate = WeightedSum.random(5, random.Random(3))
        assert len(aggregate.weights) == 5
        assert all(0 < weight <= 1 for weight in aggregate.weights)

    def test_random_weights_reproducible_with_seeded_rng(self):
        first = WeightedSum.random(3, random.Random(11))
        second = WeightedSum.random(3, random.Random(11))
        assert first.weights == second.weights

    def test_monotonicity(self):
        assert check_monotone(WeightedSum((0.3, 0.7)), 2)


class TestWeightedLpNorm:
    def test_l2_evaluation(self):
        aggregate = WeightedLpNorm((1.0, 1.0), p=2.0)
        assert aggregate((3.0, 4.0)) == pytest.approx(5.0)

    def test_l1_matches_weighted_sum(self):
        lp = WeightedLpNorm((0.5, 0.5), p=1.0)
        ws = WeightedSum((0.5, 0.5))
        assert lp((2.0, 4.0)) == pytest.approx(ws((2.0, 4.0)))

    def test_p_below_one_rejected(self):
        with pytest.raises(QueryError):
            WeightedLpNorm((1.0,), p=0.5)

    def test_negative_weights_rejected(self):
        with pytest.raises(QueryError):
            WeightedLpNorm((-1.0,), p=2.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(QueryError):
            WeightedLpNorm((1.0, 1.0))((1.0,))

    def test_monotonicity(self):
        assert check_monotone(WeightedLpNorm((0.4, 0.6), p=3.0), 2)


class TestMaxCost:
    def test_evaluation(self):
        assert MaxCost((1.0, 2.0))((5.0, 3.0)) == pytest.approx(6.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(QueryError):
            MaxCost((1.0,))((1.0, 2.0))

    def test_empty_weights_rejected(self):
        with pytest.raises(QueryError):
            MaxCost(())

    def test_monotonicity(self):
        assert check_monotone(MaxCost((0.5, 0.5, 1.0)), 3)


class TestCheckMonotone:
    def test_detects_non_monotone_function(self):
        def decreasing(costs):
            return -sum(costs)

        assert not check_monotone(decreasing, 3)

    def test_accepts_constant_function(self):
        assert check_monotone(lambda costs: 1.0, 2)

    def test_accepts_min_function(self):
        assert check_monotone(lambda costs: min(costs), 4)
