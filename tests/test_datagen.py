"""Tests for the synthetic data generators (road network, costs, facilities, queries)."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.datagen.cost_models import CostDistribution, assign_edge_costs, generate_cost_factors
from repro.datagen.facility_gen import generate_clustered_facilities, generate_uniform_facilities
from repro.datagen.queries import generate_query_locations
from repro.datagen.road_network import RoadNetworkSpec, euclidean_edge_lengths, generate_road_network
from repro.datagen.workload import Workload, WorkloadSpec, make_workload
from repro.errors import DataGenerationError
import random


class TestRoadNetworkGenerator:
    def test_node_count_close_to_requested(self):
        graph = generate_road_network(RoadNetworkSpec(num_nodes=400, seed=1))
        assert abs(graph.num_nodes - 400) <= 40

    def test_network_is_connected(self):
        graph = generate_road_network(RoadNetworkSpec(num_nodes=300, seed=2))
        assert graph.is_connected()

    def test_average_degree_near_target(self):
        spec = RoadNetworkSpec(num_nodes=900, target_degree=2.5, seed=3)
        graph = generate_road_network(spec)
        average_degree = 2 * graph.num_edges / graph.num_nodes
        assert 2.0 <= average_degree <= 3.2

    def test_reproducible_with_same_seed(self):
        first = generate_road_network(RoadNetworkSpec(num_nodes=200, seed=9))
        second = generate_road_network(RoadNetworkSpec(num_nodes=200, seed=9))
        assert first.num_edges == second.num_edges
        assert {e.edge_id for e in first.edges()} == {e.edge_id for e in second.edges()}

    def test_different_seeds_differ(self):
        first = generate_road_network(RoadNetworkSpec(num_nodes=200, seed=1))
        second = generate_road_network(RoadNetworkSpec(num_nodes=200, seed=2))
        first_lengths = sorted(edge.length for edge in first.edges())
        second_lengths = sorted(edge.length for edge in second.edges())
        assert first_lengths != second_lengths

    def test_edge_lengths_match_coordinates(self):
        graph = generate_road_network(RoadNetworkSpec(num_nodes=100, seed=5))
        lengths = euclidean_edge_lengths(graph)
        for edge in graph.edges():
            assert edge.length == pytest.approx(max(lengths[edge.edge_id], 1e-6))

    def test_multi_cost_initialisation(self):
        graph = generate_road_network(RoadNetworkSpec(num_nodes=100, seed=5), num_cost_types=3)
        assert graph.num_cost_types == 3
        edge = next(iter(graph.edges()))
        assert len(set(edge.costs)) == 1  # all costs equal the length before assignment

    def test_invalid_specs_rejected(self):
        with pytest.raises(DataGenerationError):
            RoadNetworkSpec(num_nodes=2)
        with pytest.raises(DataGenerationError):
            RoadNetworkSpec(target_degree=5.0)
        with pytest.raises(DataGenerationError):
            RoadNetworkSpec(jitter=0.9)


class TestCostModels:
    def test_parse_distribution_names(self):
        assert CostDistribution.parse("independent") is CostDistribution.INDEPENDENT
        assert CostDistribution.parse("ANTI_CORRELATED") is CostDistribution.ANTI_CORRELATED
        assert CostDistribution.parse("correlated") is CostDistribution.CORRELATED
        with pytest.raises(DataGenerationError):
            CostDistribution.parse("weird")

    def test_factors_positive_and_bounded(self):
        rng = random.Random(7)
        for distribution in CostDistribution:
            for _ in range(200):
                factors = generate_cost_factors(distribution, 4, rng)
                assert len(factors) == 4
                assert all(0.0 < factor <= 2.0 for factor in factors)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_cost_factors(CostDistribution.INDEPENDENT, 0, random.Random(1))

    def _correlation(self, distribution: CostDistribution) -> float:
        rng = random.Random(13)
        first, second = [], []
        for _ in range(600):
            factors = generate_cost_factors(distribution, 2, rng)
            first.append(factors[0])
            second.append(factors[1])
        mean_a, mean_b = statistics.fmean(first), statistics.fmean(second)
        covariance = statistics.fmean((a - mean_a) * (b - mean_b) for a, b in zip(first, second))
        return covariance / (statistics.pstdev(first) * statistics.pstdev(second))

    def test_correlated_distribution_has_positive_correlation(self):
        assert self._correlation(CostDistribution.CORRELATED) > 0.5

    def test_anti_correlated_distribution_has_negative_correlation(self):
        assert self._correlation(CostDistribution.ANTI_CORRELATED) < -0.3

    def test_independent_distribution_has_small_correlation(self):
        assert abs(self._correlation(CostDistribution.INDEPENDENT)) < 0.25

    def test_assign_edge_costs_preserves_structure(self):
        base = generate_road_network(RoadNetworkSpec(num_nodes=150, seed=4), num_cost_types=3)
        graph = assign_edge_costs(base, CostDistribution.INDEPENDENT, seed=5)
        assert graph.num_nodes == base.num_nodes
        assert graph.num_edges == base.num_edges
        for edge in base.edges():
            assert graph.edge(edge.edge_id).length == edge.length

    def test_assign_edge_costs_scales_with_length(self):
        base = generate_road_network(RoadNetworkSpec(num_nodes=150, seed=4), num_cost_types=2)
        graph = assign_edge_costs(base, CostDistribution.INDEPENDENT, seed=5)
        for edge in graph.edges():
            for cost in edge.costs:
                assert 0.0 < cost <= 2.0 * edge.length + 1e-9

    def test_assignment_reproducible(self):
        base = generate_road_network(RoadNetworkSpec(num_nodes=100, seed=4), num_cost_types=2)
        first = assign_edge_costs(base, CostDistribution.CORRELATED, seed=6)
        second = assign_edge_costs(base, CostDistribution.CORRELATED, seed=6)
        for edge in first.edges():
            assert edge.costs == second.edge(edge.edge_id).costs


class TestFacilityGeneration:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_road_network(RoadNetworkSpec(num_nodes=400, seed=8), num_cost_types=2)

    def test_requested_count_generated(self, graph):
        facilities = generate_clustered_facilities(graph, 150, seed=1)
        assert len(facilities) == 150

    def test_offsets_within_edges(self, graph):
        facilities = generate_clustered_facilities(graph, 100, seed=2)
        for facility in facilities:
            edge = graph.edge(facility.edge_id)
            assert 0.0 <= facility.offset <= edge.length

    def test_clustered_placement_is_concentrated(self, graph):
        clustered = generate_clustered_facilities(graph, 200, num_clusters=3, seed=3)
        uniform = generate_uniform_facilities(graph, 200, seed=3)
        clustered_edges = len(set(f.edge_id for f in clustered))
        uniform_edges = len(set(f.edge_id for f in uniform))
        assert clustered_edges < uniform_edges

    def test_cluster_attribute_recorded(self, graph):
        facilities = generate_clustered_facilities(graph, 10, num_clusters=2, seed=4)
        assert all("cluster_center" in facility.attributes for facility in facilities)

    def test_zero_facilities(self, graph):
        assert len(generate_clustered_facilities(graph, 0, seed=5)) == 0

    def test_negative_count_rejected(self, graph):
        with pytest.raises(DataGenerationError):
            generate_clustered_facilities(graph, -1)
        with pytest.raises(DataGenerationError):
            generate_uniform_facilities(graph, -1)

    def test_invalid_cluster_count_rejected(self, graph):
        with pytest.raises(DataGenerationError):
            generate_clustered_facilities(graph, 10, num_clusters=0)

    def test_reproducibility(self, graph):
        first = generate_clustered_facilities(graph, 50, seed=11)
        second = generate_clustered_facilities(graph, 50, seed=11)
        assert [(f.edge_id, f.offset) for f in first] == [(f.edge_id, f.offset) for f in second]


class TestQueryGeneration:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_road_network(RoadNetworkSpec(num_nodes=200, seed=21), num_cost_types=2)

    def test_requested_count(self, graph):
        assert len(generate_query_locations(graph, 25, seed=1)) == 25

    def test_locations_are_valid(self, graph):
        for location in generate_query_locations(graph, 30, seed=2):
            location.validate(graph)

    def test_on_nodes_mode(self, graph):
        locations = generate_query_locations(graph, 10, seed=3, on_nodes=True)
        assert all(location.is_node for location in locations)

    def test_negative_count_rejected(self, graph):
        with pytest.raises(DataGenerationError):
            generate_query_locations(graph, -1)

    def test_reproducibility(self, graph):
        first = generate_query_locations(graph, 10, seed=5)
        second = generate_query_locations(graph, 10, seed=5)
        assert first == second


class TestWorkload:
    def test_make_workload_end_to_end(self):
        workload = make_workload(WorkloadSpec(num_nodes=200, num_facilities=80, num_queries=3, seed=31))
        assert isinstance(workload, Workload)
        assert workload.graph.is_connected()
        assert len(workload.facilities) == 80
        assert len(workload.queries) == 3
        for query in workload.queries:
            query.validate(workload.graph)

    def test_describe_summary(self):
        workload = make_workload(WorkloadSpec(num_nodes=150, num_facilities=40, num_queries=2, seed=32))
        description = workload.describe()
        assert description["facilities"] == 40
        assert description["queries"] == 2
        assert description["distribution"] == "anti-correlated"

    def test_uniform_placement_option(self):
        workload = make_workload(
            WorkloadSpec(num_nodes=150, num_facilities=40, num_queries=1, clustered=False, seed=33)
        )
        assert len(workload.facilities) == 40

    def test_invalid_spec_rejected(self):
        with pytest.raises(DataGenerationError):
            WorkloadSpec(num_cost_types=0)
        with pytest.raises(DataGenerationError):
            WorkloadSpec(num_queries=-1)

    def test_cost_types_propagate(self):
        workload = make_workload(WorkloadSpec(num_nodes=150, num_facilities=10, num_cost_types=5, seed=34))
        assert workload.graph.num_cost_types == 5
