"""Tests for incremental skyline/top-k maintenance under facility updates."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregates import WeightedSum
from repro.core.maintenance import SkylineMaintainer, TopKMaintainer
from repro.errors import FacilityError, QueryError
from repro.network import Facility, FacilitySet, InMemoryAccessor, NetworkLocation
from tests.helpers import exact_skyline, exact_top_k, facility_vectors, random_mcn, random_query


def build_dynamic_instance(seed: int, *, num_facilities: int = 12):
    graph, facilities = random_mcn(
        num_nodes=40, num_edges=75, num_cost_types=3, num_facilities=num_facilities, seed=seed
    )
    query = random_query(graph, seed=seed + 1)
    return graph, facilities, query


def oracle_skyline(graph, facilities, query):
    return exact_skyline(facility_vectors(graph, facilities, query))


class TestSkylineMaintainer:
    def test_initial_skyline_matches_oracle(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_skyline_exposes_complete_vectors(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        truth = facility_vectors(tiny_graph, tiny_facilities, tiny_query)
        for facility_id, costs in maintainer.skyline.items():
            assert costs == pytest.approx(truth[facility_id])

    def test_insert_dominated_facility_changes_nothing(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        before = maintainer.skyline_ids()
        # A facility far from the query on the slow corridor is dominated.
        far_edge = tiny_graph.edge_between(6, 7)
        changed = maintainer.insert(Facility(99, far_edge.edge_id, 0.5))
        assert maintainer.skyline_ids() == before or changed
        # Whatever happened, the maintained result must match the oracle.
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_insert_dominating_facility_enters_and_evicts(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        # A facility essentially at the query location dominates everything.
        close_edge = tiny_graph.edge_between(3, 4)
        changed = maintainer.insert(Facility(99, close_edge.edge_id, 0.0))
        assert changed
        assert maintainer.skyline_ids() == {99}

    def test_delete_non_member_is_incremental(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        non_member = next(
            fid for fid in (0, 1, 2) if fid not in maintainer.skyline_ids()
        )
        recomputations_before = maintainer.statistics.recomputations
        changed = maintainer.delete(non_member)
        assert not changed
        assert maintainer.statistics.recomputations == recomputations_before
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_delete_member_recomputes(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        member = next(iter(maintainer.skyline_ids()))
        changed = maintainer.delete(member)
        assert changed
        assert member not in maintainer.skyline_ids()
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_delete_unknown_facility_rejected(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        with pytest.raises(FacilityError):
            maintainer.delete(12345)

    def test_move_query_recomputes(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        new_query = NetworkLocation.at_node(8)
        maintainer.move_query(new_query)
        assert maintainer.query == new_query
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, new_query)
        assert maintainer.statistics.query_moves == 1

    def test_random_update_sequence_matches_oracle(self):
        graph, facilities, query = build_dynamic_instance(seed=77)
        maintainer = SkylineMaintainer(graph, facilities, query)
        rng = random.Random(5)
        edges = list(graph.edges())
        next_id = 1000
        for step in range(25):
            if rng.random() < 0.5 or len(facilities) < 3:
                edge = rng.choice(edges)
                facility = Facility(next_id, edge.edge_id, rng.uniform(0, edge.length))
                next_id += 1
                maintainer.insert(facility)
            else:
                victim = rng.choice(list(facilities.facility_ids()))
                maintainer.delete(victim)
            assert maintainer.skyline_ids() == oracle_skyline(graph, facilities, query), f"step {step}"

    def test_insertions_are_cheaper_than_recomputation(self):
        graph, facilities, query = build_dynamic_instance(seed=78, num_facilities=15)
        maintainer = SkylineMaintainer(graph, facilities, query)
        recomputations_before = maintainer.statistics.recomputations
        edge = next(iter(graph.edges()))
        for index in range(5):
            maintainer.insert(Facility(500 + index, edge.edge_id, 0.25 * edge.length))
        assert maintainer.statistics.recomputations == recomputations_before
        assert maintainer.statistics.insertions == 5


class TestTopKMaintainer:
    def oracle(self, graph, facilities, query, aggregate, k):
        return [fid for fid, _score in exact_top_k(facility_vectors(graph, facilities, query), aggregate, k)]

    def test_initial_ranking_matches_oracle(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        assert maintainer.facility_ids() == self.oracle(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)

    def test_invalid_k_rejected(self, tiny_graph, tiny_facilities, tiny_query):
        with pytest.raises(QueryError):
            TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, WeightedSum((0.5, 0.5)), 0)

    def test_insert_better_facility_enters_ranking(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        close_edge = tiny_graph.edge_between(3, 4)
        changed = maintainer.insert(Facility(99, close_edge.edge_id, 0.0))
        assert changed
        assert maintainer.facility_ids()[0] == 99

    def test_insert_worse_facility_changes_nothing(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        before = maintainer.facility_ids()
        # A clone of facility 2's position scores 3.75, worse than the current
        # second-best (facility 0 at 3.5), so the ranking must not change.
        far_edge = tiny_graph.edge_between(7, 8)
        changed = maintainer.insert(Facility(99, far_edge.edge_id, 2.5))
        assert not changed
        assert maintainer.facility_ids() == before

    def test_delete_member_recomputes_correctly(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        top = maintainer.facility_ids()[0]
        assert maintainer.delete(top)
        assert maintainer.facility_ids() == self.oracle(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)

    def test_delete_non_member_is_incremental(self):
        graph, facilities, query = build_dynamic_instance(seed=80)
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        maintainer = TopKMaintainer(graph, facilities, query, aggregate, 3)
        non_members = [fid for fid in facilities.facility_ids() if fid not in maintainer.facility_ids()]
        recomputations = maintainer.statistics.recomputations
        maintainer.delete(non_members[0])
        assert maintainer.statistics.recomputations == recomputations

    def test_random_update_sequence_matches_oracle(self):
        graph, facilities, query = build_dynamic_instance(seed=81)
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        maintainer = TopKMaintainer(graph, facilities, query, aggregate, 4)
        rng = random.Random(9)
        edges = list(graph.edges())
        next_id = 2000
        for step in range(20):
            if rng.random() < 0.5 or len(facilities) <= 5:
                edge = rng.choice(edges)
                maintainer.insert(Facility(next_id, edge.edge_id, rng.uniform(0, edge.length)))
                next_id += 1
            else:
                maintainer.delete(rng.choice(list(facilities.facility_ids())))
            expected_scores = [
                round(score, 6)
                for _fid, score in exact_top_k(facility_vectors(graph, facilities, query), aggregate, 4)
            ]
            observed_scores = [round(score, 6) for _fid, score in maintainer.ranking()]
            assert observed_scores == expected_scores, f"step {step}"

    def test_move_query(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        new_query = NetworkLocation.at_node(8)
        maintainer.move_query(new_query)
        assert maintainer.facility_ids() == self.oracle(tiny_graph, tiny_facilities, new_query, aggregate, 2)


class TestFacilitySetRemoval:
    def test_remove_returns_and_unindexes(self, tiny_graph, tiny_facilities):
        removed = tiny_facilities.remove(1)
        assert removed.facility_id == 1
        assert 1 not in tiny_facilities
        assert tiny_facilities.on_edge(removed.edge_id) == []

    def test_remove_unknown_rejected(self, tiny_graph, tiny_facilities):
        with pytest.raises(FacilityError):
            tiny_facilities.remove(55)

    def test_remove_keeps_other_facilities_on_same_edge(self, tiny_graph):
        facilities = FacilitySet(tiny_graph)
        facilities.add(Facility(0, 0, 1.0))
        facilities.add(Facility(1, 0, 2.0))
        facilities.remove(0)
        assert [f.facility_id for f in facilities.on_edge(0)] == [1]

    def test_accessor_reflects_removal(self, tiny_graph, tiny_facilities):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        edge = tiny_facilities.facility(1).edge_id
        assert len(accessor.edge_facilities(edge)) == 1
        tiny_facilities.remove(1)
        assert accessor.edge_facilities(edge) == []
