"""Tests for incremental skyline/top-k maintenance under facility updates."""

from __future__ import annotations

import random

import pytest

from repro.core.aggregates import WeightedSum
from repro.core.maintenance import MaintenanceStatistics, SkylineMaintainer, TopKMaintainer
from repro.errors import FacilityError, QueryError
from repro.network import Facility, FacilitySet, InMemoryAccessor, MultiCostGraph, NetworkLocation
from tests.helpers import exact_skyline, exact_top_k, facility_vectors, random_mcn, random_query


def build_dynamic_instance(seed: int, *, num_facilities: int = 12):
    graph, facilities = random_mcn(
        num_nodes=40, num_edges=75, num_cost_types=3, num_facilities=num_facilities, seed=seed
    )
    query = random_query(graph, seed=seed + 1)
    return graph, facilities, query


def oracle_skyline(graph, facilities, query):
    return exact_skyline(facility_vectors(graph, facilities, query))


class TestSkylineMaintainer:
    def test_initial_skyline_matches_oracle(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_skyline_exposes_complete_vectors(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        truth = facility_vectors(tiny_graph, tiny_facilities, tiny_query)
        for facility_id, costs in maintainer.skyline.items():
            assert costs == pytest.approx(truth[facility_id])

    def test_insert_dominated_facility_changes_nothing(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        before = maintainer.skyline_ids()
        # A facility far from the query on the slow corridor is dominated.
        far_edge = tiny_graph.edge_between(6, 7)
        changed = maintainer.insert(Facility(99, far_edge.edge_id, 0.5))
        assert maintainer.skyline_ids() == before or changed
        # Whatever happened, the maintained result must match the oracle.
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_insert_dominating_facility_enters_and_evicts(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        # A facility essentially at the query location dominates everything.
        close_edge = tiny_graph.edge_between(3, 4)
        changed = maintainer.insert(Facility(99, close_edge.edge_id, 0.0))
        assert changed
        assert maintainer.skyline_ids() == {99}

    def test_delete_non_member_is_incremental(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        non_member = next(
            fid for fid in (0, 1, 2) if fid not in maintainer.skyline_ids()
        )
        recomputations_before = maintainer.statistics.recomputations
        changed = maintainer.delete(non_member)
        assert not changed
        assert maintainer.statistics.recomputations == recomputations_before
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_delete_member_recomputes(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        member = next(iter(maintainer.skyline_ids()))
        changed = maintainer.delete(member)
        assert changed
        assert member not in maintainer.skyline_ids()
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, tiny_query)

    def test_delete_unknown_facility_rejected(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        with pytest.raises(FacilityError):
            maintainer.delete(12345)

    def test_move_query_recomputes(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        new_query = NetworkLocation.at_node(8)
        maintainer.move_query(new_query)
        assert maintainer.query == new_query
        assert maintainer.skyline_ids() == oracle_skyline(tiny_graph, tiny_facilities, new_query)
        assert maintainer.statistics.query_moves == 1

    def test_random_update_sequence_matches_oracle(self):
        graph, facilities, query = build_dynamic_instance(seed=77)
        maintainer = SkylineMaintainer(graph, facilities, query)
        rng = random.Random(5)
        edges = list(graph.edges())
        next_id = 1000
        for step in range(25):
            if rng.random() < 0.5 or len(facilities) < 3:
                edge = rng.choice(edges)
                facility = Facility(next_id, edge.edge_id, rng.uniform(0, edge.length))
                next_id += 1
                maintainer.insert(facility)
            else:
                victim = rng.choice(list(facilities.facility_ids()))
                maintainer.delete(victim)
            assert maintainer.skyline_ids() == oracle_skyline(graph, facilities, query), f"step {step}"

    def test_insertions_are_cheaper_than_recomputation(self):
        graph, facilities, query = build_dynamic_instance(seed=78, num_facilities=15)
        maintainer = SkylineMaintainer(graph, facilities, query)
        recomputations_before = maintainer.statistics.recomputations
        edge = next(iter(graph.edges()))
        for index in range(5):
            maintainer.insert(Facility(500 + index, edge.edge_id, 0.25 * edge.length))
        assert maintainer.statistics.recomputations == recomputations_before
        assert maintainer.statistics.insertions == 5


class TestTopKMaintainer:
    def oracle(self, graph, facilities, query, aggregate, k):
        return [fid for fid, _score in exact_top_k(facility_vectors(graph, facilities, query), aggregate, k)]

    def test_initial_ranking_matches_oracle(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        assert maintainer.facility_ids() == self.oracle(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)

    def test_invalid_k_rejected(self, tiny_graph, tiny_facilities, tiny_query):
        with pytest.raises(QueryError):
            TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, WeightedSum((0.5, 0.5)), 0)

    def test_insert_better_facility_enters_ranking(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        close_edge = tiny_graph.edge_between(3, 4)
        changed = maintainer.insert(Facility(99, close_edge.edge_id, 0.0))
        assert changed
        assert maintainer.facility_ids()[0] == 99

    def test_insert_worse_facility_changes_nothing(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        before = maintainer.facility_ids()
        # A clone of facility 2's position scores 3.75, worse than the current
        # second-best (facility 0 at 3.5), so the ranking must not change.
        far_edge = tiny_graph.edge_between(7, 8)
        changed = maintainer.insert(Facility(99, far_edge.edge_id, 2.5))
        assert not changed
        assert maintainer.facility_ids() == before

    def test_delete_member_recomputes_correctly(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        top = maintainer.facility_ids()[0]
        assert maintainer.delete(top)
        assert maintainer.facility_ids() == self.oracle(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)

    def test_delete_non_member_is_incremental(self):
        graph, facilities, query = build_dynamic_instance(seed=80)
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        maintainer = TopKMaintainer(graph, facilities, query, aggregate, 3)
        non_members = [fid for fid in facilities.facility_ids() if fid not in maintainer.facility_ids()]
        recomputations = maintainer.statistics.recomputations
        maintainer.delete(non_members[0])
        assert maintainer.statistics.recomputations == recomputations

    def test_random_update_sequence_matches_oracle(self):
        graph, facilities, query = build_dynamic_instance(seed=81)
        aggregate = WeightedSum.uniform(graph.num_cost_types)
        maintainer = TopKMaintainer(graph, facilities, query, aggregate, 4)
        rng = random.Random(9)
        edges = list(graph.edges())
        next_id = 2000
        for step in range(20):
            if rng.random() < 0.5 or len(facilities) <= 5:
                edge = rng.choice(edges)
                maintainer.insert(Facility(next_id, edge.edge_id, rng.uniform(0, edge.length)))
                next_id += 1
            else:
                maintainer.delete(rng.choice(list(facilities.facility_ids())))
            expected_scores = [
                round(score, 6)
                for _fid, score in exact_top_k(facility_vectors(graph, facilities, query), aggregate, 4)
            ]
            observed_scores = [round(score, 6) for _fid, score in maintainer.ranking()]
            assert observed_scores == expected_scores, f"step {step}"

    def test_move_query(self, tiny_graph, tiny_facilities, tiny_query):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        new_query = NetworkLocation.at_node(8)
        maintainer.move_query(new_query)
        assert maintainer.facility_ids() == self.oracle(tiny_graph, tiny_facilities, new_query, aggregate, 2)


def disconnected_instance():
    """Two components: the query lives in one, edge B sits unreachable in the other."""
    graph = MultiCostGraph(num_cost_types=2)
    for node_id in range(4):
        graph.add_node(node_id, float(node_id), 0.0)
    edge_a = graph.add_edge(0, 1, (2.0, 3.0))
    edge_b = graph.add_edge(2, 3, (1.0, 1.0))
    facilities = FacilitySet(graph)
    facilities.add(Facility(0, edge_a.edge_id, 0.5))
    return graph, facilities, NetworkLocation.at_node(0), edge_b.edge_id


class TestAtomicUpdates:
    """A rejected update must leave the facility set and the result untouched
    — the regression the mid-batch validation fix guards (previously an
    unreachable insert mutated the set before raising)."""

    @pytest.mark.parametrize("kind", ["skyline", "topk"])
    def test_unreachable_insert_leaves_everything_unchanged(self, kind):
        graph, facilities, query, unreachable_edge = disconnected_instance()
        if kind == "skyline":
            maintainer = SkylineMaintainer(graph, facilities, query)
            result_before = maintainer.skyline_ids()
        else:
            maintainer = TopKMaintainer(graph, facilities, query, WeightedSum((0.5, 0.5)), 2)
            result_before = maintainer.ranking()
        ids_before = set(facilities.facility_ids())
        stats_before = maintainer.statistics.snapshot()
        with pytest.raises(QueryError):
            maintainer.insert(Facility(99, unreachable_edge, 0.5))
        assert set(facilities.facility_ids()) == ids_before
        assert 99 not in facilities
        if kind == "skyline":
            assert maintainer.skyline_ids() == result_before
        else:
            assert maintainer.ranking() == result_before
        assert maintainer.statistics.since(stats_before) == MaintenanceStatistics()

    def test_invalid_offset_insert_leaves_everything_unchanged(
        self, tiny_graph, tiny_facilities, tiny_query
    ):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        before = maintainer.skyline_ids()
        edge = tiny_graph.edge_between(0, 1)
        with pytest.raises(FacilityError):
            maintainer.insert(Facility(99, edge.edge_id, edge.length + 10.0))
        assert 99 not in tiny_facilities
        assert maintainer.skyline_ids() == before

    def test_duplicate_id_insert_leaves_everything_unchanged(
        self, tiny_graph, tiny_facilities, tiny_query
    ):
        maintainer = TopKMaintainer(
            tiny_graph, tiny_facilities, tiny_query, WeightedSum((0.5, 0.5)), 2
        )
        before = maintainer.ranking()
        edge = tiny_graph.edge_between(0, 1)
        with pytest.raises(FacilityError):
            maintainer.insert(Facility(1, edge.edge_id, 0.5))
        assert maintainer.ranking() == before


class TestDeferredMaintenance:
    """The defer/refresh protocol used by the monitoring service."""

    def test_deferred_delete_marks_stale_and_guards_reads(
        self, tiny_graph, tiny_facilities, tiny_query
    ):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        member = next(iter(maintainer.skyline_ids()))
        recomputations = maintainer.statistics.recomputations
        changed = maintainer.delete(member, defer_recompute=True)
        assert changed
        assert maintainer.stale
        assert maintainer.statistics.recomputations == recomputations
        with pytest.raises(QueryError):
            maintainer.skyline_ids()
        maintainer.refresh()
        assert not maintainer.stale
        assert maintainer.skyline_ids() == exact_skyline(
            facility_vectors(tiny_graph, tiny_facilities, tiny_query)
        )

    def test_deferred_move_then_refresh_matches_oracle(
        self, tiny_graph, tiny_facilities, tiny_query
    ):
        aggregate = WeightedSum((0.5, 0.5))
        maintainer = TopKMaintainer(tiny_graph, tiny_facilities, tiny_query, aggregate, 2)
        target = NetworkLocation.at_node(8)
        maintainer.move_query(target, defer_recompute=True)
        assert maintainer.stale
        with pytest.raises(QueryError):
            maintainer.ranking()
        maintainer.refresh()
        expected = exact_top_k(
            facility_vectors(tiny_graph, tiny_facilities, target), aggregate, 2
        )
        assert [(fid, pytest.approx(score)) for fid, score in maintainer.ranking()] == [
            (fid, pytest.approx(score)) for fid, score in expected
        ]

    def test_refresh_with_external_result(self, tiny_graph, tiny_facilities, tiny_query):
        from repro.core.engine import MCNQueryEngine

        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        member = next(iter(maintainer.skyline_ids()))
        maintainer.delete(member, defer_recompute=True)
        engine = MCNQueryEngine(tiny_graph, tiny_facilities)
        recomputations = maintainer.statistics.recomputations
        maintainer.refresh(engine.skyline(tiny_query, algorithm="cea"))
        assert maintainer.statistics.recomputations == recomputations + 1
        assert maintainer.skyline_ids() == exact_skyline(
            facility_vectors(tiny_graph, tiny_facilities, tiny_query)
        )

    def test_note_hooks_over_a_shared_set(self, tiny_graph, tiny_facilities, tiny_query):
        """Two maintainers over one set: the caller mutates once and notifies
        both; results match independent maintenance."""
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        sky = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query, accessor=accessor)
        top = TopKMaintainer(
            tiny_graph, tiny_facilities, tiny_query, WeightedSum((0.5, 0.5)), 2, accessor=accessor
        )
        close_edge = tiny_graph.edge_between(3, 4)
        facility = Facility(99, close_edge.edge_id, 0.0)
        tiny_facilities.add(facility)
        sky.note_insert(facility)
        top.note_insert(facility)
        assert 99 in sky.skyline_ids()
        assert top.facility_ids()[0] == 99
        tiny_facilities.remove(99)
        sky.note_delete(99, defer_recompute=True)
        top.note_delete(99, defer_recompute=True)
        sky.refresh()
        top.refresh()
        vectors = facility_vectors(tiny_graph, tiny_facilities, tiny_query)
        assert sky.skyline_ids() == exact_skyline(vectors)
        assert [fid for fid, _score in top.ranking()] == [
            fid for fid, _score in exact_top_k(vectors, WeightedSum((0.5, 0.5)), 2)
        ]

    def test_stale_note_delete_of_non_member_reports_no_change(
        self, tiny_graph, tiny_facilities, tiny_query
    ):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        member = next(iter(maintainer.skyline_ids()))
        non_member = next(
            fid for fid in (0, 1, 2) if fid not in maintainer.skyline_ids()
        )
        maintainer.delete(member, defer_recompute=True)
        assert maintainer.stale
        # While stale, deleting a facility outside the cached result must not
        # claim the result changed.
        assert maintainer.delete(non_member, defer_recompute=True) is False

    def test_insert_with_precomputed_costs_matches_plain_insert(self):
        graph, facilities, query = build_dynamic_instance(seed=91)
        twin = FacilitySet(graph, iter(facilities))
        plain = SkylineMaintainer(graph, facilities, query)
        primed = SkylineMaintainer(graph, twin, query)
        edge = next(iter(graph.edges()))
        facility = Facility(700, edge.edge_id, 0.25 * edge.length)
        costs = primed.cost_vector(facility)
        plain.insert(Facility(700, edge.edge_id, 0.25 * edge.length))
        primed.insert(facility, costs=costs)
        assert plain.skyline == primed.skyline


class TestCostVectorPricing:
    def test_cost_vector_matches_dijkstra_oracle(self):
        """The O(d) distance-map pricing must equal an independent Dijkstra."""
        graph, facilities, query = build_dynamic_instance(seed=92, num_facilities=10)
        maintainer = SkylineMaintainer(graph, facilities, query)
        rng = random.Random(4)
        edges = list(graph.edges())
        for index in range(12):
            edge = rng.choice(edges)
            facility = Facility(600 + index, edge.edge_id, rng.uniform(0, edge.length))
            priced = maintainer.cost_vector(facility)
            probe = FacilitySet(graph, iter(facilities))
            probe.add(facility)
            truth = facility_vectors(graph, probe, query)[facility.facility_id]
            assert priced == pytest.approx(truth, abs=1e-9)

    def test_cost_vector_on_query_edge_uses_direct_path(self, tiny_graph, tiny_facilities):
        edge = tiny_graph.edge_between(3, 4)
        query = NetworkLocation.on_edge(edge.edge_id, 0.5)
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, query)
        facility = Facility(99, edge.edge_id, 1.5)
        priced = maintainer.cost_vector(facility)
        probe = FacilitySet(tiny_graph, iter(tiny_facilities))
        probe.add(facility)
        truth = facility_vectors(tiny_graph, probe, query)[99]
        assert priced == pytest.approx(truth, abs=1e-12)

    def test_cost_vector_does_not_mutate(self, tiny_graph, tiny_facilities, tiny_query):
        maintainer = SkylineMaintainer(tiny_graph, tiny_facilities, tiny_query)
        edge = tiny_graph.edge_between(0, 1)
        maintainer.cost_vector(Facility(99, edge.edge_id, 0.5))
        assert 99 not in tiny_facilities
        assert 99 not in maintainer.skyline_ids()


class TestFacilitySetRemoval:
    def test_remove_returns_and_unindexes(self, tiny_graph, tiny_facilities):
        removed = tiny_facilities.remove(1)
        assert removed.facility_id == 1
        assert 1 not in tiny_facilities
        assert tiny_facilities.on_edge(removed.edge_id) == []

    def test_remove_unknown_rejected(self, tiny_graph, tiny_facilities):
        with pytest.raises(FacilityError):
            tiny_facilities.remove(55)

    def test_remove_keeps_other_facilities_on_same_edge(self, tiny_graph):
        facilities = FacilitySet(tiny_graph)
        facilities.add(Facility(0, 0, 1.0))
        facilities.add(Facility(1, 0, 2.0))
        facilities.remove(0)
        assert [f.facility_id for f in facilities.on_edge(0)] == [1]

    def test_accessor_reflects_removal(self, tiny_graph, tiny_facilities):
        accessor = InMemoryAccessor(tiny_graph, tiny_facilities)
        edge = tiny_facilities.facility(1).edge_id
        assert len(accessor.edge_facilities(edge)) == 1
        tiny_facilities.remove(1)
        assert accessor.edge_facilities(edge) == []
