"""Unit tests for the in-memory accessor and the fetch-once (CEA) cache."""

from __future__ import annotations

import pytest

from repro.errors import FacilityError
from repro.network import FacilitySet, InMemoryAccessor, MultiCostGraph
from repro.network.accessor import AccessStatistics, FetchOnceCache, GraphAccessor


@pytest.fixture
def accessor(tiny_graph, tiny_facilities) -> InMemoryAccessor:
    return InMemoryAccessor(tiny_graph, tiny_facilities)


class TestInMemoryAccessor:
    def test_implements_protocol(self, accessor):
        assert isinstance(accessor, GraphAccessor)

    def test_num_cost_types(self, accessor):
        assert accessor.num_cost_types == 2

    def test_adjacency_contents(self, accessor, tiny_graph):
        records = accessor.adjacency(4)
        assert {record.neighbor for record in records} == {1, 3, 5, 7}
        highway = next(record for record in records if record.neighbor == 5)
        assert highway.costs == (2.0, 1.0)
        assert highway.first_node == tiny_graph.edge(highway.edge_id).u

    def test_adjacency_reports_facility_counts(self, accessor, tiny_graph):
        records = accessor.adjacency(4)
        counts = {record.edge_id: record.facility_count for record in records}
        highway_edge = tiny_graph.edge_between(4, 5).edge_id
        assert counts[highway_edge] == 1
        assert all(count == 0 for edge_id, count in counts.items() if edge_id != highway_edge)

    def test_edge_facilities(self, accessor, tiny_graph):
        edge = tiny_graph.edge_between(4, 5)
        records = accessor.edge_facilities(edge.edge_id)
        assert [record.facility_id for record in records] == [1]
        assert records[0].offset == 1.0

    def test_edge_without_facilities(self, accessor, tiny_graph):
        edge = tiny_graph.edge_between(0, 3)
        assert accessor.edge_facilities(edge.edge_id) == []

    def test_facility_edge(self, accessor, tiny_graph):
        assert accessor.facility_edge(1) == tiny_graph.edge_between(4, 5).edge_id

    def test_statistics_count_requests(self, accessor):
        accessor.adjacency(0)
        accessor.adjacency(1)
        accessor.edge_facilities(0)
        accessor.facility_edge(0)
        stats = accessor.statistics
        assert stats.adjacency_requests == 2
        assert stats.facility_requests == 1
        assert stats.facility_tree_requests == 1
        assert stats.total_requests == 4

    def test_rejects_facilities_of_another_graph(self, tiny_graph, tiny_facilities):
        other = MultiCostGraph(2)
        other.add_node(0)
        other.add_node(1)
        other.add_edge(0, 1, [1.0, 1.0])
        with pytest.raises(FacilityError):
            InMemoryAccessor(other, tiny_facilities)


class TestAccessStatistics:
    def test_snapshot_and_since(self):
        stats = AccessStatistics(adjacency_requests=5, facility_requests=2, page_reads=7)
        snapshot = stats.snapshot()
        stats.adjacency_requests += 3
        stats.page_reads += 1
        delta = stats.since(snapshot)
        assert delta.adjacency_requests == 3
        assert delta.facility_requests == 0
        assert delta.page_reads == 1

    def test_reset(self):
        stats = AccessStatistics(adjacency_requests=5, buffer_hits=3)
        stats.reset()
        assert stats.total_requests == 0
        assert stats.buffer_hits == 0


class TestFetchOnceCache:
    def test_adjacency_fetched_once(self, accessor):
        cache = FetchOnceCache(accessor)
        first = cache.adjacency(4)
        second = cache.adjacency(4)
        assert first is second
        assert accessor.statistics.adjacency_requests == 1

    def test_edge_facilities_fetched_once(self, accessor, tiny_graph):
        cache = FetchOnceCache(accessor)
        edge = tiny_graph.edge_between(4, 5).edge_id
        cache.edge_facilities(edge)
        cache.edge_facilities(edge)
        assert accessor.statistics.facility_requests == 1

    def test_facility_edge_fetched_once(self, accessor):
        cache = FetchOnceCache(accessor)
        assert cache.facility_edge(1) == cache.facility_edge(1)
        assert accessor.statistics.facility_tree_requests == 1

    def test_cached_nodes_counter(self, accessor):
        cache = FetchOnceCache(accessor)
        cache.adjacency(0)
        cache.adjacency(1)
        cache.adjacency(0)
        assert cache.cached_nodes == 2

    def test_exposes_underlying_statistics_and_dimensionality(self, accessor):
        cache = FetchOnceCache(accessor)
        assert cache.num_cost_types == accessor.num_cost_types
        assert cache.statistics is accessor.statistics
